"""Simulation-as-a-service: protocol, queue fairness, dedup, resume.

Four layers, cheapest first:

* **Protocol** — :func:`repro.service.protocol.parse_submit` normalization
  and the dedup fingerprint (pure functions, no daemon).
* **Admission queue** — the fairness policy driven with simulated time:
  the adversarial flooder/trickler scenario the ISSUE pins (fair must
  beat FIFO on max/min tenant slowdown) and a hypothesis no-starvation
  property.
* **HTTP round trips** — one in-process daemon shared by the module:
  submit/status/stream/cancel goldens (tests/golden/service_protocol.json),
  dedup across tenants, error behaviour for misbehaving clients.
* **Durability/equivalence** — a kill -9'd daemon subprocess resuming its
  sweep from the checkpoint on restart, and the equivalence gate: a
  scenario served by the daemon records the byte-identical record id the
  direct ``repro fig2 --store`` path records.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.service import (
    AdmissionQueue,
    ReproService,
    ServiceClient,
    ServiceError,
    parse_submit,
    request_fingerprint,
)
from repro.service.daemon import ENDPOINT_FILE, TERMINAL
from repro.store import ResultStore, scenario_for

GOLDEN = pathlib.Path(__file__).parent / "golden" / "service_protocol.json"


# ---------------------------------------------------------------- protocol


class TestProtocol:
    def test_fingerprint_excludes_tenant(self):
        a = parse_submit({"tenant": "a", "kind": "workload",
                          "spec": {"apps": ["SD", "SB"]}})
        b = parse_submit({"tenant": "b", "kind": "workload",
                          "spec": {"apps": ["SD", "SB"]}})
        assert a.job_id == b.job_id

    def test_fingerprint_normalizes_spelled_out_defaults(self):
        # Same question, defaults omitted vs spelled out: one job.
        terse = parse_submit({"kind": "workload",
                              "spec": {"apps": ["SD", "SB"]}})
        verbose = parse_submit({"kind": "workload",
                                "spec": {"apps": ["SD", "SB"], "cycles": None,
                                         "seed": None, "policy": None,
                                         "backend": None}})
        assert terse.job_id == verbose.job_id
        assert terse.job_id == request_fingerprint("workload", terse.spec)

    def test_distinct_specs_distinct_jobs(self):
        a = parse_submit({"kind": "workload",
                          "spec": {"apps": ["SD", "SB"]}})
        b = parse_submit({"kind": "workload",
                          "spec": {"apps": ["SD", "SB"], "cycles": 1000}})
        assert a.job_id != b.job_id

    @pytest.mark.parametrize("payload, needle", [
        ({"kind": "nope", "spec": {}}, "unknown kind"),
        ({"kind": "workload", "spec": {"apps": ["NOPE"]}}, "unknown app"),
        ({"kind": "workload", "spec": {"apps": []}}, "non-empty"),
        ({"kind": "sweep", "spec": {"workloads": "SD"}}, "non-empty list"),
        ({"kind": "scenario", "spec": {}}, "registered name or a scenario"),
        ({"kind": "scenario", "spec": {"id": "xyz"}}, "hex"),
        ({"kind": "scenario", "spec": {"name": "fig3",
                                       "params": {"jobs": 4}}},
         "unsupported scenario param"),
        ({"kind": "workload", "spec": {"apps": ["SD"]},
          "schema": "other/9"}, "unsupported schema"),
        ({"kind": "workload", "spec": {"apps": ["SD"]}, "tenant": ""},
         "tenant"),
        ({"kind": "chaos", "spec": {"jobs": [{"mode": "ok"}]}},
         "chaos submissions are disabled"),
        ({"kind": "chaos", "spec": {"jobs": [{"mode": "hang"}]}},
         "hang is not servable"),
    ])
    def test_validation_is_one_line(self, payload, needle):
        allow = payload.get("kind") == "chaos" and "hang" in str(payload)
        with pytest.raises(ValueError) as err:
            parse_submit(payload, allow_chaos=allow)
        msg = str(err.value)
        assert needle in msg and "\n" not in msg


# ----------------------------------------------------------- fairness queue


def _drain_adversarial(policy: str, *, n_flood: int = 20,
                       est: float = 1.0) -> dict:
    """The pinned adversarial load: a flooder dumps ``n_flood`` requests at
    t=0, a trickler submits one at t=0.5, service takes ``est`` seconds."""
    q = AdmissionQueue(policy, default_est_s=est)
    for i in range(n_flood):
        q.submit("flooder", f"f{i}", est_s=est, now=0.0)
    q.submit("trickler", "t0", est_s=est, now=0.5)
    now = 0.5
    while len(q):
        req = q.next(now=now)
        now += est
        q.complete(req, now=now)
    fair = q.fairness(now=now)
    fair["audit_total"] = q.audit.total
    fair["metrics"] = q.registry.snapshot()
    return fair


class TestAdmissionQueue:
    def test_adversarial_fair_beats_fifo(self):
        # The ISSUE's acceptance gate: under flooder + trickler, the fair
        # policy's max/min tenant slowdown is strictly lower than FIFO's.
        fair = _drain_adversarial("fair")
        fifo = _drain_adversarial("fifo")
        assert fair["unfairness"] < fifo["unfairness"]
        # And not marginally: FIFO makes the trickler wait out the whole
        # flood (slowdown ~ n_flood) while fair admits it within a couple
        # of grants.
        assert fifo["unfairness"] > 10.0
        assert fair["unfairness"] < 2.0
        assert fair["tenants"]["trickler"] < fifo["tenants"]["trickler"]

    def test_uncontended_tenant_scores_one(self):
        q = AdmissionQueue("fair", default_est_s=5.0)
        q.submit("solo", "j1", now=0.0)
        req = q.next(now=0.0)
        q.complete(req, now=2.0)  # actual service 2s, nobody else around
        assert q.tenant_slowdowns(now=2.0)["solo"] == pytest.approx(1.0)

    def test_own_backlog_is_not_unfairness(self):
        # A tenant queueing behind itself would have queued alone too.
        q = AdmissionQueue("fair", default_est_s=1.0)
        for i in range(5):
            q.submit("hog", f"j{i}", est_s=1.0, now=0.0)
        now = 0.0
        while len(q):
            req = q.next(now=now)
            now += 1.0
            q.complete(req, now=now)
        assert q.tenant_slowdowns(now=now)["hog"] == pytest.approx(1.0)
        assert q.fairness(now=now)["unfairness"] == pytest.approx(1.0)

    def test_audit_records_every_decision(self):
        fair = _drain_adversarial("fair")
        assert fair["audit_total"] == 21
        q = AdmissionQueue("fair")
        q.submit("a", "j1", now=0.0)
        q.submit("b", "j2", now=0.0)
        q.next(now=1.0)
        decision = q.audit.to_dict()["decisions"][-1]
        assert decision["policy"] == "fair"
        assert set(decision["candidates"]) == {"a", "b"}
        assert decision["chosen"]["tenant"] in {"a", "b"}

    def test_fairness_metrics_exported_to_registry(self):
        fair = _drain_adversarial("fair")
        metrics = fair["metrics"]
        assert metrics["service.queue.unfairness"]["value"] == pytest.approx(
            fair["unfairness"], rel=1e-4)
        assert 0.0 < metrics["service.queue.jains_index"]["value"] <= 1.0
        assert metrics["service.queue.completed"]["value"] == 21
        assert metrics["service.queue.wait_s"]["count"] == 21

    def test_snapshot_shape(self):
        q = AdmissionQueue("fair")
        q.submit("a", "j1", now=0.0)
        snap = q.snapshot(now=1.0)
        assert snap["schema"] == "repro.service.queue/1"
        assert snap["pending"] == {"a": 1}
        assert snap["audit"]["schema"] == "repro.service.queue-audit/1"
        assert set(snap["fairness"]) >= {"unfairness", "jains_index",
                                         "gini_wait", "p95_wait_s"}

    def test_cancel_removes_pending(self):
        q = AdmissionQueue("fair")
        r1 = q.submit("a", "j1", now=0.0)
        q.submit("a", "j2", now=0.0)
        assert q.cancel(r1.rid) is r1
        assert q.cancel(r1.rid) is None
        assert len(q) == 1
        assert q.next(now=1.0).job_id == "j2"

    @settings(max_examples=25, deadline=None)
    @given(
        n_flooders=st.integers(min_value=1, max_value=5),
        backlog=st.integers(min_value=1, max_value=10),
        est=st.floats(min_value=0.1, max_value=10.0),
        refill=st.lists(st.booleans(), min_size=0, max_size=40),
    )
    def test_no_starvation_property(self, n_flooders, backlog, est, refill):
        # However hard flooders push, a tenant's pending head is overtaken
        # at most once per competing head plus the work already pending at
        # submission time — it is always served.
        q = AdmissionQueue("fair", default_est_s=est)
        now, jid = 0.0, 0
        for f in range(n_flooders):
            for _ in range(backlog):
                q.submit(f"f{f}", f"j{jid}", est_s=est, now=now)
                jid += 1
        pending_before = len(q)
        q.submit("trickler", "target", est_s=est, now=now)
        overtakes = 0
        refills = iter(refill + [True] * 1000)  # keep the pressure on
        while True:
            req = q.next(now=now)
            if req.tenant == "trickler":
                break
            overtakes += 1
            now += est
            q.complete(req, now=now)
            for f in range(n_flooders):
                if next(refills):
                    q.submit(f"f{f}", f"j{jid}", est_s=est, now=now)
                    jid += 1
            assert overtakes <= pending_before + n_flooders, "starved"
        assert overtakes <= pending_before + n_flooders


# ------------------------------------------------------------ live daemon


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("service")
    svc = ReproService(
        root / "state", store_dir=str(root / "store"), policy="fair",
    )
    svc.start()
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(state_dir=str(root / "state"), timeout_s=180.0)
    yield svc, client
    svc.stop()
    thread.join(timeout=10.0)


def _wait_status(client, job_id, states, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.status(job_id)
        if status["status"] in states:
            return status
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached {states}")


class TestHttpRoundTrip:
    def test_protocol_golden_round_trip(self, daemon):
        _, client = daemon
        golden = json.loads(GOLDEN.read_text())
        spec = {"apps": ["SD", "SB"], "cycles": 20000}

        receipt = client.submit("workload", spec, tenant="alice")
        job_id = receipt["job"]
        assert {**receipt, "job": "<job>"} == golden["submit"]

        final = client.wait(job_id)
        resubmit = client.submit("workload", spec, tenant="bob")
        assert {**resubmit, "job": "<job>"} == golden["resubmit"]

        final = client.status(job_id)
        assert final["result"]["result"]["names"] == ["SD", "SB"]
        masked = {**final, "job": "<job>", "result": "<result>"}
        assert masked == golden["status"]

        events = list(client.stream(job_id))
        assert [e["event"] for e in events] == golden["events"]
        assert events[0]["deduped"] is False
        assert events[-1]["deduped"] is True  # bob's subscription
        done = [e for e in events if e["event"] == "done"][0]
        assert done["job"] == job_id and done["error"] is None

    def test_cancel_round_trip_golden(self, daemon):
        _, client = daemon
        golden = json.loads(GOLDEN.read_text())
        # A blocker occupies the single scheduler thread long enough for
        # the target to still be queued when the cancel lands.
        blocker = client.submit(
            "workload", {"apps": ["NN", "VA"], "cycles": 120000},
            tenant="alice",
        )
        _wait_status(client, blocker["job"], ("running", "done"))
        target = client.submit(
            "workload", {"apps": ["BS", "AA"], "cycles": 120001},
            tenant="bob",
        )
        receipt = client.cancel(target["job"])
        assert {**receipt, "job": "<job>"} == golden["cancel"]
        assert client.status(target["job"])["status"] == "cancelled"
        # Re-cancelling reports the same terminal state, not an error.
        again = client.cancel(target["job"])
        assert again["status"] == "cancelled"
        # Cancelling a finished job is a no-op.
        final = client.wait(blocker["job"])
        assert final["status"] == "done"
        noop = client.cancel(blocker["job"])
        assert noop["cancelled"] is False and noop["status"] == "done"

    def test_resubmit_after_cancel_is_fresh(self, tmp_path):
        # Pure submission semantics: no scheduler thread, jobs stay queued.
        svc = ReproService(tmp_path / "state")
        req = parse_submit({"tenant": "a", "kind": "workload",
                            "spec": {"apps": ["SD"], "cycles": 999}})
        first = svc.submit(req)
        assert first["deduped"] is False
        assert svc.submit(req)["deduped"] is True  # still queued: dedup
        svc.cancel(first["job"])
        assert svc.jobs[first["job"]].state == "cancelled"
        fresh = svc.submit(req)
        assert fresh["deduped"] is False  # cancelled → a new attempt

    def test_misbehaving_clients_get_one_line_errors(self, daemon):
        svc, client = daemon
        with pytest.raises(ServiceError) as err:
            client.submit("workload", {"apps": ["NOPE"]})
        assert err.value.status == 400 and "unknown app" in err.value.message
        with pytest.raises(ServiceError) as err:
            client.status("feedbeef")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.cancel("feedbeef")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.submit("chaos", {"jobs": [{"mode": "ok"}]})
        assert err.value.status == 400
        assert "chaos submissions are disabled" in err.value.message
        # The daemon survived all of it.
        assert client.health()["ok"] is True

    def test_raw_malformed_bodies(self, daemon):
        import urllib.error
        import urllib.request

        svc, _ = daemon
        req = urllib.request.Request(
            svc.url + "/v1/jobs", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400
        body = json.loads(err.value.read().decode())
        assert "bad JSON" in body["error"]

    def test_scenario_catalog_lists_registry(self, daemon):
        _, client = daemon
        rows = client.scenarios()
        names = {r["name"] for r in rows}
        assert {"fig2", "fig3", "fig5"} <= names
        assert all(len(r["scenario_id"]) == 64 for r in rows)

    def test_queue_endpoint_exposes_fairness_and_audit(self, daemon):
        _, client = daemon
        snap = client.queue()
        assert snap["schema"] == "repro.service.queue/1"
        assert snap["policy"] == "fair"
        assert snap["audit"]["total"] >= 1
        assert snap["fairness"]["unfairness"] is not None
        assert 0.0 < snap["fairness"]["jains_index"] <= 1.0

    def test_report_covers_served_jobs(self, daemon):
        _, client = daemon
        report = client.report()
        assert report["n_jobs"] >= 1
        assert report["ok"] >= 1


@pytest.mark.slow
class TestScenarioDedup:
    def test_same_scenario_same_seed_runs_once(self, daemon):
        svc, client = daemon
        spec = {"name": "fig3"}
        first = client.submit("scenario", spec, tenant="alice")
        second = client.submit("scenario", spec, tenant="bob")
        assert first["job"] == second["job"]
        final = client.wait(first["job"])
        assert final["status"] == "done"
        assert final["simulations"] == 1  # one simulation, two subscribers
        assert sorted(final["tenants"]) == ["alice", "bob"]
        assert final["record_id"] is not None
        # Both subscribers see the identical record id in the event stream.
        done = [e for e in client.stream(first["job"])
                if e["event"] == "done"]
        assert done[0]["record_id"] == final["record_id"]
        # Exactly one fig3 recording landed in the store.
        store = ResultStore(svc.store_dir)
        fig3 = [e for e in store.index()
                if e["scenario_name"] == "fig3"]
        assert len(fig3) == 1
        assert fig3[0]["record_id"] == final["record_id"]


@pytest.mark.slow
class TestEquivalenceGate:
    def test_served_scenario_record_id_matches_direct_cli(
        self, daemon, tmp_path, capsys
    ):
        # The acceptance gate: fig2 through the daemon records the same
        # record id as `repro fig2 --store` run directly.  The daemon's
        # replay cache is shared so the alone-runs are computed once.
        svc, client = daemon
        direct = tmp_path / "direct-store"
        assert main(["fig2", "--store", str(direct),
                     "--cache-dir", svc.cache_dir]) == 0
        capsys.readouterr()
        direct_index = ResultStore(direct).index()
        assert len(direct_index) == 1

        sid = scenario_for("fig2").scenario_id()
        receipt = client.submit("scenario", {"id": sid[:16]}, tenant="alice")
        final = client.wait(receipt["job"])
        assert final["status"] == "done", final["error"]
        assert final["scenario_id"] == sid
        assert final["record_id"] == direct_index[0]["record_id"]
        assert final["scenario_id"] == direct_index[0]["scenario_id"]


@pytest.mark.slow
class TestKillResume:
    def _spawn(self, state_dir, store_dir):
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", str(state_dir), "--store", str(store_dir)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    @staticmethod
    def _wait_health(state_dir, *, not_pid=None, timeout_s=30.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                client = ServiceClient(state_dir=str(state_dir),
                                       timeout_s=5.0)
                health = client.health()
                if health["ok"] and health["pid"] != not_pid:
                    return client, health["pid"]
            except (ServiceError, ValueError, OSError):
                pass
            time.sleep(0.1)
        raise AssertionError("daemon never became healthy")

    def test_kill_dash_nine_resumes_sweep_from_checkpoint(self, tmp_path):
        state = tmp_path / "state"
        store = tmp_path / "store"
        proc = self._spawn(state, store)
        try:
            client, pid = self._wait_health(state)
            spec = {
                "workloads": [["SD", "SB"], ["NN", "VA"], ["BS", "AA"],
                              ["SC", "SD"]],
                "cycles": 60000,
            }
            receipt = client.submit("sweep", spec, tenant="alice")
            job_id = receipt["job"]
            # Wait for at least one sub-job to land in the sweep checkpoint,
            # then kill -9 mid-sweep.
            ckpt = state / "ckpt"
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                lines = sum(
                    len(p.read_text().splitlines())
                    for p in ckpt.glob("sweep-*.jsonl")
                )
                if lines >= 1:
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("no checkpoint progress before kill")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        proc = self._spawn(state, store)
        try:
            client, _ = self._wait_health(state, not_pid=pid)
            # The journal re-enqueued the interrupted sweep on startup.
            final = client.wait(job_id, timeout_s=120.0)
            assert final["status"] == "done", final["error"]
            outcomes = final["result"]["outcomes"]
            assert [o["key"] for o in outcomes] == [
                "SD+SB", "NN+VA", "BS+AA", "SC+SD"
            ]
            assert all(o["ok"] for o in outcomes)
            # At least the checkpointed sub-job came back from disk, not
            # from a re-run.
            assert any(o["resumed"] for o in outcomes)
        finally:
            try:
                client.shutdown()
                proc.wait(timeout=10)
            except Exception:
                proc.kill()
                proc.wait(timeout=10)
