"""Tests for the sweep-scope telemetry bus (repro.obs.bus).

Covers the channel protocol (flush discipline, torn-line tolerance,
incremental tailing), the SweepStats roll-up (percentiles, cache
economics, straggler + failure attribution), the sweep-level Chrome
trace (including the crashed-worker partial-trace contract), the merged
per-job profiler, the inline == pooled determinism contract, and the
EWMA-based progress ETA + live straggler warnings (satellites 2 and 3).
"""

import io
import json
import os
import time

import pytest

from repro.faults import MODE_EXIT, ChaosJob
from repro.harness import scaled_config
from repro.harness.parallel import (
    FAIL_CRASH,
    JobOutcome,
    WorkloadJob,
    run_jobs,
)
from repro.obs import bus
from repro.obs.progress import SweepProgress, _fmt_eta

CFG = scaled_config()
SMALL = 30_000


def ok_jobs(n, **kw):
    return [ChaosJob(name=f"ok{i}", payload=100 + i, **kw) for i in range(n)]


# ------------------------------------------------------------ channel layer


class TestWorkerChannel:
    def test_roundtrip_and_flush_discipline(self, tmp_path):
        ch = bus.activate(tmp_path)
        try:
            assert bus.current() is ch
            assert bus.activate(tmp_path) is ch  # idempotent per dir+pid
            ch.job_start("s-1", 0, "QR+CT", submit_ts=1.0)
            ch.span("simulate", 0.5, cycles=SMALL, backend="reference")
            ch.job_end(ok=True, cache={"hits": 1, "misses": 2, "stores": 2},
                       backend="reference")
            # job_start / job_end flush; the buffered span rides along with
            # the job_end flush, so the file is already complete on disk.
            records = bus.read_bus(tmp_path)
        finally:
            bus.deactivate()
        assert bus.current() is None
        kinds = [r["t"] for r in records]
        assert kinds == ["meta", "job_start", "span", "span", "job_end"]
        meta = records[0]
        assert meta["schema"] == bus.BUS_SCHEMA
        assert meta["pid"] == os.getpid()
        names = [r["name"] for r in records if r["t"] == "span"]
        assert names == ["dequeue", "simulate"]
        sim = records[3]
        assert sim["args"] == {"cycles": SMALL, "backend": "reference"}
        assert sim["sweep"] == "s-1" and sim["job"] == 0
        end = records[-1]
        assert end["ok"] and end["cache"]["hits"] == 1
        assert end["cpu_s"] >= 0.0 and end["dur"] >= 0.0

    def test_crash_keeps_start_loses_only_spans(self, tmp_path):
        # A worker killed mid-job never flushed its spans, but job_start
        # was flushed — the evidence a crashed job must leave behind.
        ch = bus.activate(tmp_path)
        try:
            ch.job_start("s-1", 3, "dead")
            ch.span("simulate", 9.9)  # buffered, would die with the worker
            on_disk = bus.read_bus(tmp_path)
        finally:
            bus.deactivate()
        assert [r["t"] for r in on_disk] == ["meta", "job_start"]
        assert on_disk[1]["job"] == 3

    def test_torn_line_skipped(self, tmp_path):
        ch = bus.activate(tmp_path)
        try:
            ch.job_start("s-1", 0, "k")
            ch.job_end(ok=True)
            path = ch.path
        finally:
            bus.deactivate()
        with open(path, "a") as fh:
            fh.write('{"t": "span", "name": "sim')  # killed mid-write
        records = bus.read_bus(tmp_path)
        assert [r["t"] for r in records] == ["meta", "job_start", "job_end"]

    def test_reader_polls_only_complete_lines(self, tmp_path):
        path = tmp_path / "bus-1.jsonl"
        path.write_text('{"t":"meta","ts":1.0}\n{"t":"job_sta')
        reader = bus.BusReader(tmp_path)
        assert [r["t"] for r in reader.poll()] == ["meta"]
        assert reader.poll() == []  # nothing new, half-line still pending
        with path.open("a") as fh:
            fh.write('rt","ts":2.0}\n')
        assert [r["t"] for r in reader.poll()] == ["job_start"]

    def test_read_bus_missing_dir_is_empty(self, tmp_path):
        assert bus.read_bus(tmp_path / "nope") == []
        assert bus.bus_files(tmp_path / "nope") == []


# ----------------------------------------------------------- aggregation


def _records(jobs):
    """Synthesize a bus record stream from compact job descriptions."""
    out = [{"t": "meta", "schema": bus.BUS_SCHEMA, "pid": 10, "ts": 0.0},
           {"t": "sweep", "sweep": "s", "ts": 0.0, "n_jobs": len(jobs)}]
    for j in jobs:
        out.append({"t": "job_start", "sweep": "s", "job": j["job"],
                    "key": j.get("key", f"k{j['job']}"), "pid": j["pid"],
                    "ts": j["ts"], "attempt": j.get("attempt", 1)})
        for name, dur, args in j.get("spans", ()):
            out.append({"t": "span", "name": name, "sweep": "s",
                        "job": j["job"], "pid": j["pid"],
                        "ts": j["ts"] + dur, "dur": dur,
                        **({"args": args} if args else {})})
        if "dur" in j:
            out.append({"t": "job_end", "sweep": "s", "job": j["job"],
                        "pid": j["pid"], "ts": j["ts"] + j["dur"],
                        "dur": j["dur"], "ok": j.get("ok", True),
                        "cpu_s": j.get("cpu_s", j["dur"]),
                        "rss_peak_kb": j.get("rss", 1000),
                        **({"cache": j["cache"]} if "cache" in j else {}),
                        **({"backend": j["backend"]}
                           if "backend" in j else {})})
        if "outcome_ok" in j:
            out.append({"t": "outcome", "sweep": "s", "job": j["job"],
                        "key": j.get("key", f"k{j['job']}"),
                        "ok": j["outcome_ok"], "ts": j["ts"] + 50.0,
                        "failure_kind": j.get("failure_kind"),
                        "duration_s": j.get("outcome_dur", j.get("dur", 0)),
                        "attempts": j.get("attempt", 1), "resumed": False})
    return out


class TestPercentile:
    def test_interpolation(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert bus.percentile(vals, 0.0) == 1.0
        assert bus.percentile(vals, 1.0) == 4.0
        assert bus.percentile(vals, 0.5) == pytest.approx(2.5)
        assert bus.percentile([7.0], 0.95) == 7.0
        assert bus.percentile([], 0.5) == 0.0


class TestSweepStats:
    def test_rollup(self):
        records = _records([
            # Ordinary job, cache miss then store, vectorized backend.
            {"job": 0, "pid": 10, "ts": 1.0, "dur": 2.0,
             "spans": [("simulate", 1.0, {"backend": "vectorized"}),
                       ("replay", 0.8, {"cached": False})],
             "cache": {"hits": 0, "misses": 1, "stores": 1},
             "backend": "vectorized", "outcome_ok": True},
            # Cache-hit job on another worker.
            {"job": 1, "pid": 20, "ts": 1.5, "dur": 1.0,
             "spans": [("simulate", 0.7, None),
                       ("replay", 0.1, {"cached": True})],
             "cache": {"hits": 1, "misses": 0, "stores": 0},
             "backend": "reference", "outcome_ok": True},
            # Straggler: > 2x p50, dominated by its replay phase.
            {"job": 2, "pid": 20, "ts": 2.0, "dur": 9.0, "key": "slow",
             "spans": [("simulate", 2.0, None),
                       ("replay", 6.5, {"cached": False})],
             "cache": {"hits": 0, "misses": 1, "stores": 1},
             "backend": "reference", "outcome_ok": True},
            # Crashed job: start but no end; parent settled it as a crash.
            {"job": 3, "pid": 30, "ts": 3.0, "key": "dead",
             "outcome_ok": False, "failure_kind": FAIL_CRASH,
             "outcome_dur": 4.0},
        ])
        stats = bus.SweepStats.from_records(records)
        assert (stats.n_jobs, stats.ok, stats.failed) == (4, 3, 1)
        assert stats.incomplete == 1
        assert stats.latency["p50"] == pytest.approx(2.0)
        assert stats.latency["max"] == pytest.approx(9.0)
        assert stats.latency["p50"] <= stats.latency["p95"] <= \
            stats.latency["p99"] <= stats.latency["max"]
        # Straggler attribution: job 2 at 4.5x p50, replay-dominated.
        assert [s["job"] for s in stats.stragglers] == [2]
        assert stats.stragglers[0]["dominant_phase"] == "replay"
        assert stats.stragglers[0]["ratio"] == pytest.approx(4.5)
        # Failure attribution survives the missing job_end.
        assert stats.failures == [
            {"job": 3, "key": "dead", "kind": FAIL_CRASH, "attempts": 1}
        ]
        # Cache economics: 1 hit x mean uncached replay (0.8+6.5)/2,
        # minus the 0.1s the cached replay still cost.
        assert stats.cache["hits"] == 1 and stats.cache["misses"] == 2
        assert stats.cache["hit_rate"] == pytest.approx(1 / 3)
        assert stats.cache["est_saved_s"] == pytest.approx(3.65 - 0.1)
        # Per-backend and per-worker splits.
        assert stats.backends["vectorized"]["jobs"] == 1
        assert stats.backends["reference"]["jobs"] == 2
        assert stats.workers["20"]["jobs"] == 2
        assert stats.workers["20"]["busy_s"] == pytest.approx(10.0)
        assert stats.busy_s == pytest.approx(12.0)
        assert stats.wall_s > 0 and 0 < stats.parallel_efficiency <= 1.0

    def test_dict_roundtrip(self):
        stats = bus.SweepStats.from_records(_records([
            {"job": 0, "pid": 10, "ts": 1.0, "dur": 2.0,
             "outcome_ok": True},
        ]))
        d = stats.to_dict()
        assert d["schema"] == bus.SWEEP_SCHEMA
        back = bus.SweepStats.from_dict(json.loads(json.dumps(d)))
        assert back.to_dict() == d
        assert back.comparable() == stats.comparable()

    def test_retry_last_attempt_wins(self):
        records = _records([
            {"job": 0, "pid": 10, "ts": 1.0, "key": "flaky"},  # attempt 1 dies
        ])
        records += _records([
            {"job": 0, "pid": 20, "ts": 5.0, "dur": 1.0, "key": "flaky",
             "attempt": 2, "outcome_ok": True},
        ])[2:]  # skip the duplicate meta/sweep preamble
        stats = bus.SweepStats.from_records(records)
        assert (stats.n_jobs, stats.ok, stats.failed) == (1, 1, 0)
        assert stats.incomplete == 0  # the retry's job_end settles it


# ------------------------------------------------------------ chrome trace


class TestSweepTrace:
    def test_trace_structure_and_validation(self):
        records = _records([
            {"job": 0, "pid": 10, "ts": 1.0, "dur": 2.0,
             "spans": [("simulate", 1.0, None)], "backend": "reference",
             "outcome_ok": True},
            {"job": 1, "pid": 20, "ts": 1.5, "dur": 1.0, "outcome_ok": True},
        ])
        payload = bus.sweep_chrome_trace(records)
        bus.validate_sweep_trace(payload)  # must not raise
        assert payload["otherData"]["n_workers"] == 2
        assert payload["otherData"]["n_jobs"] == 2
        # Worker pids are remapped to dense track indices 0..n-1.
        ev_pids = {e["pid"] for e in payload["traceEvents"]}
        assert ev_pids == {0, 1}
        slices = [e for e in payload["traceEvents"]
                  if e["ph"] == "X" and e["tid"] == 0]
        assert {s["args"]["job"] for s in slices} == {0, 1}
        phases = [e for e in payload["traceEvents"]
                  if e["ph"] == "X" and e["tid"] == 1]
        assert [p["name"] for p in phases] == ["simulate"]

    def test_crashed_job_gets_synthesized_slice(self):
        records = _records([
            {"job": 0, "pid": 10, "ts": 1.0, "dur": 2.0, "outcome_ok": True},
            {"job": 1, "pid": 30, "ts": 3.0, "key": "dead",
             "outcome_ok": False, "failure_kind": FAIL_CRASH,
             "outcome_dur": 4.0},
        ])
        payload = bus.sweep_chrome_trace(records)
        bus.validate_sweep_trace(payload)
        dead = [e for e in payload["traceEvents"]
                if e["ph"] == "X" and e["args"].get("job") == 1]
        assert len(dead) == 1
        assert dead[0]["name"] == f"dead ({FAIL_CRASH})"
        assert dead[0]["args"]["failure"] == FAIL_CRASH
        assert dead[0]["dur"] == pytest.approx(4.0 * 1e6)
        lost = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert len(lost) == 1 and lost[0]["args"]["key"] == "dead"

    @pytest.mark.parametrize("mutate, msg", [
        (lambda ev: ev.pop("name"), "no name"),
        (lambda ev: ev.update(ph="Q"), "illegal phase"),
        (lambda ev: ev.update(ts=-5.0), "bad ts"),
        (lambda ev: ev.update(dur=-1.0), "bad dur"),
        (lambda ev: ev.update(pid=99), "process_name"),
    ])
    def test_validation_rejects_malformed(self, mutate, msg):
        payload = bus.sweep_chrome_trace(_records([
            {"job": 0, "pid": 10, "ts": 1.0, "dur": 2.0, "outcome_ok": True},
        ]))
        ev = [e for e in payload["traceEvents"] if e["ph"] == "X"][0]
        mutate(ev)
        with pytest.raises(ValueError, match=msg):
            bus.validate_sweep_trace(payload)

    def test_export_sweep_trace_writes_valid_file(self, tmp_path):
        from repro.obs.export import export_sweep_trace

        records = _records([
            {"job": 0, "pid": 10, "ts": 1.0, "dur": 2.0, "outcome_ok": True},
        ])
        out = tmp_path / "trace.json"
        export_sweep_trace(records, out)
        payload = json.loads(out.read_text())
        bus.validate_sweep_trace(payload)


# -------------------------------------------------- harness integration


class TestHarnessIntegration:
    def test_inline_sweep_records_and_deactivates(self, tmp_path):
        outs = run_jobs(ok_jobs(3), n_jobs=1, bus=tmp_path)
        assert all(o.ok for o in outs)
        assert bus.current() is None  # run_jobs restored the off state
        records = bus.read_bus(tmp_path)
        kinds = {r["t"] for r in records}
        assert kinds == {"meta", "sweep", "job_start", "job_end", "outcome"}
        stats = bus.SweepStats.from_records(records)
        assert (stats.n_jobs, stats.ok, stats.failed) == (3, 3, 0)
        bus.validate_sweep_trace(bus.sweep_chrome_trace(records))

    def test_two_sweeps_share_one_bus_dir(self, tmp_path):
        run_jobs(ok_jobs(2), n_jobs=1, bus=tmp_path)
        run_jobs(ok_jobs(1), n_jobs=1, bus=tmp_path)
        records = bus.read_bus(tmp_path)
        sweeps = {r["sweep"] for r in records if r["t"] == "sweep"}
        assert len(sweeps) == 2  # distinct ids, one shared directory
        stats = bus.SweepStats.from_records(records)
        assert stats.n_jobs == 3 and stats.ok == 3

    @pytest.mark.slow
    def test_inline_equals_pooled_comparable(self, tmp_path):
        jobs = [
            WorkloadJob(apps=("QR", "CT"), config=CFG,
                        shared_cycles=SMALL, models=()),
            WorkloadJob(apps=("SD", "SB"), config=CFG,
                        shared_cycles=SMALL, models=()),
        ]
        inline_dir, pooled_dir = tmp_path / "inline", tmp_path / "pooled"
        a = run_jobs(jobs, n_jobs=1, bus=inline_dir)
        b = run_jobs(jobs, n_jobs=2, bus=pooled_dir)
        assert all(o.ok for o in a + b)
        s_inline = bus.SweepStats.from_records(bus.read_bus(inline_dir))
        s_pooled = bus.SweepStats.from_records(bus.read_bus(pooled_dir))
        # The wall-clock-free projection is identical; the pooled run
        # additionally records dequeue/serialize spans and >1 worker.
        assert s_inline.comparable() == s_pooled.comparable()
        assert s_inline.phases["simulate"]["count"] == 2
        assert s_inline.phases["replay"]["count"] == 4
        assert "serialize" not in s_inline.phases
        assert s_pooled.phases["serialize"]["count"] == 2
        assert len(s_pooled.workers) == 2

    @pytest.mark.slow
    def test_worker_crash_leaves_wellformed_partial_trace(self, tmp_path):
        jobs = [ChaosJob(name="dead", mode=MODE_EXIT), *ok_jobs(3)]
        # retries=1: an unexplained break blames every in-flight job, so an
        # innocent sibling needs its isolated re-run to settle ok — without
        # it the test races on whether siblings finished before the break.
        outs = run_jobs(jobs, n_jobs=2, bus=tmp_path, retries=1)
        assert not outs[0].ok and outs[0].failure_kind == FAIL_CRASH
        assert all(o.ok for o in outs[1:])
        records = bus.read_bus(tmp_path)
        stats = bus.SweepStats.from_records(records)
        assert stats.n_jobs == 4 and stats.failed == 1
        assert stats.incomplete >= 1
        dead = [f for f in stats.failures if f["key"] == jobs[0].key]
        assert dead and dead[0]["kind"] == FAIL_CRASH
        # The partial trace is still structurally valid and carries a
        # synthesized failure slice for the crashed job.
        payload = bus.sweep_chrome_trace(records)
        bus.validate_sweep_trace(payload)
        failed = [e for e in payload["traceEvents"]
                  if e["ph"] == "X" and e.get("args", {}).get("failure")]
        assert failed, "crashed job must appear as a failure slice"

    def test_profile_dumps_merge(self, tmp_path):
        outs = run_jobs(ok_jobs(2), n_jobs=1, bus=tmp_path, profile=True)
        assert all(o.ok for o in outs)
        dumps = sorted(tmp_path.glob("prof-*.pstats"))
        assert len(dumps) == 2
        # A torn dump from a killed worker is skipped, not fatal.
        (tmp_path / "prof-job9-a1.pstats").write_bytes(b"\x00garbage")
        merged = bus.merge_profiles(tmp_path)
        assert merged is not None
        rows = bus.profile_table(merged, limit=5)
        assert 0 < len(rows) <= 5
        assert all(len(r) == 4 for r in rows)

    def test_merge_profiles_empty_dir(self, tmp_path):
        assert bus.merge_profiles(tmp_path) is None


# ------------------------------------------------- progress (satellite 2)


class TestEtaFormatting:
    @pytest.mark.parametrize("seconds, expect", [
        (0, "0s"),
        (59, "59s"),
        (60, "1m00s"),
        (61, "1m01s"),
        (3599, "59m59s"),
        (3600, "1h00m"),
        (3661, "1h01m"),
    ])
    def test_boundaries(self, seconds, expect):
        assert _fmt_eta(seconds) == expect


def _outcome(i=0, dur=1.0, ok=True):
    job = ChaosJob(name=f"j{i}")
    return JobOutcome(index=i, job=job, result=None if not ok else i,
                      error=None if ok else "boom", duration_s=dur)


class TestEwmaEta:
    # Each job_done consumes two clock ticks: the completion timestamp,
    # then one inside the status-line rendering.

    def test_ewma_tracks_recent_regime(self):
        ticks = iter([0.0, 10.0, 10.0, 12.0, 12.0])
        prog = SweepProgress(10, stream=io.StringIO(),
                             clock=lambda: next(ticks))
        prog.job_done(_outcome(0, dur=10.0))
        assert prog._ewma_gap == pytest.approx(10.0)  # seeded by first gap
        prog.job_done(_outcome(1, dur=2.0))
        # 0.3 * 2 + 0.7 * 10: leans to the recent 2s gap, remembers the 10s.
        assert prog._ewma_gap == pytest.approx(7.6)
        assert prog._ewma_dur == pytest.approx(0.3 * 2.0 + 0.7 * 10.0)

    def test_eta_uses_ewma_not_global_mean(self):
        # One 100s warm-up gap, then a 1s/job steady state.  The old
        # global-mean ETA stays dominated by the warm-up forever; the
        # EWMA converges toward the recent regime.
        times = iter([0.0]
                     + [t for i in range(8) for t in (100.0 + i,) * 2]
                     + [107.0])
        prog = SweepProgress(20, stream=io.StringIO(),
                             clock=lambda: next(times))
        for i in range(8):
            prog.job_done(_outcome(i))
        remaining = prog.total - prog.done
        eta_ewma = remaining * prog._ewma_gap
        eta_global_mean = remaining * 107.0 / prog.done
        assert eta_ewma < 0.75 * eta_global_mean
        status = prog._status(_outcome(9))
        assert f"eta {_fmt_eta(eta_ewma)}" in status

    def test_straggler_warning_once(self, tmp_path):
        # One job started 100s ago (wall clock) and never ended.
        (tmp_path / "bus-1.jsonl").write_text(
            json.dumps({"t": "job_start", "sweep": "s", "job": 7,
                        "key": "slowpoke", "pid": 1,
                        "ts": time.time() - 100.0}) + "\n"
        )
        ticks = iter([0.0, 1.0, 1.0, 2.0, 2.0])
        stream = io.StringIO()
        prog = SweepProgress(5, stream=stream, bus=str(tmp_path),
                             clock=lambda: next(ticks))
        prog.job_done(_outcome(0, dur=1.0))  # EWMA dur 1s -> threshold 3s
        out = stream.getvalue()
        assert "straggler" in out and "slowpoke" in out
        before = out.count("straggler")
        prog.job_done(_outcome(1, dur=1.0))  # must not warn again
        assert stream.getvalue().count("straggler") == before

    def test_finished_job_is_not_a_straggler(self, tmp_path):
        (tmp_path / "bus-1.jsonl").write_text(
            json.dumps({"t": "job_start", "sweep": "s", "job": 7,
                        "key": "done", "pid": 1,
                        "ts": time.time() - 100.0}) + "\n"
            + json.dumps({"t": "job_end", "sweep": "s", "job": 7,
                          "pid": 1, "ts": time.time(), "dur": 100.0,
                          "ok": True, "cpu_s": 1.0,
                          "rss_peak_kb": 1}) + "\n"
        )
        ticks = iter([0.0, 1.0, 1.0])
        stream = io.StringIO()
        prog = SweepProgress(5, stream=stream, bus=str(tmp_path),
                             clock=lambda: next(ticks))
        prog.job_done(_outcome(0, dur=1.0))
        assert "straggler" not in stream.getvalue()


class TestStragglerSettledOrdering:
    """Satellite: straggler scans must settle outcomes before aging starts,
    regardless of which channel file a record landed in, and the wall clock
    used for ages is injectable for deterministic tests."""

    @staticmethod
    def _prog(tmp_path, stream, wall):
        ticks = iter([0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
        return SweepProgress(5, stream=stream, bus=str(tmp_path),
                             clock=lambda: next(ticks), wall=wall)

    def test_injected_wall_clock_is_deterministic(self, tmp_path):
        (tmp_path / "bus-1.jsonl").write_text(
            json.dumps({"t": "job_start", "sweep": "s", "job": 7,
                        "key": "slowpoke", "pid": 1, "ts": 100.0}) + "\n"
        )
        stream = io.StringIO()
        prog = self._prog(tmp_path, stream, wall=lambda: 200.0)
        prog.job_done(_outcome(0, dur=1.0))  # threshold 3s, age 100s
        assert "straggler" in stream.getvalue()

        stream2 = io.StringIO()
        prog2 = self._prog(tmp_path, stream2, wall=lambda: 101.0)
        prog2.job_done(_outcome(0, dur=1.0))  # age 1s < threshold
        assert "straggler" not in stream2.getvalue()

    def test_outcome_before_start_in_file_order_settles(self, tmp_path):
        # The parent's outcome channel (bus-0) is read before the worker
        # channel (bus-1), but the worker's job_start carries the earlier
        # timestamp.  Batch processing must order by ts, not file order,
        # so the settled job never re-enters the in-flight set.
        (tmp_path / "bus-0.jsonl").write_text(
            json.dumps({"t": "outcome", "sweep": "s", "job": 7,
                        "key": "late-flush", "ok": True,
                        "ts": 105.0}) + "\n"
        )
        (tmp_path / "bus-1.jsonl").write_text(
            json.dumps({"t": "job_start", "sweep": "s", "job": 7,
                        "key": "late-flush", "pid": 1, "ts": 100.0}) + "\n"
        )
        stream = io.StringIO()
        prog = self._prog(tmp_path, stream, wall=lambda: 500.0)
        prog.job_done(_outcome(0, dur=1.0))
        assert prog._inflight == {}
        assert "straggler" not in stream.getvalue()

    def test_settled_set_survives_across_batches(self, tmp_path):
        # Batch 1 delivers only the outcome; the worker's job_start is
        # flushed late and arrives in batch 2.  The persistent settled set
        # must stop it resurrecting as an in-flight straggler.
        (tmp_path / "bus-0.jsonl").write_text(
            json.dumps({"t": "outcome", "sweep": "s", "job": 7,
                        "key": "zombie", "ok": True, "ts": 105.0}) + "\n"
        )
        stream = io.StringIO()
        prog = self._prog(tmp_path, stream, wall=lambda: 500.0)
        prog.job_done(_outcome(0, dur=1.0))  # batch 1: settles job 7
        assert ("s", 7) in prog._settled

        with (tmp_path / "bus-1.jsonl").open("a") as fh:
            fh.write(json.dumps({"t": "job_start", "sweep": "s", "job": 7,
                                 "key": "zombie", "pid": 1,
                                 "ts": 100.0}) + "\n")
        prog.job_done(_outcome(1, dur=1.0))  # batch 2: stale start replay
        assert prog._inflight == {}
        assert "straggler" not in stream.getvalue()
