"""Unit tests for the shared L2 slice."""

import pytest
from hypothesis import given, strategies as st

from repro.config import CacheConfig
from repro.sim.cache import SetAssocCache


def small_cache(assoc=4, sets=8) -> SetAssocCache:
    cfg = CacheConfig(size_bytes=sets * assoc * 128, line_bytes=128, assoc=assoc)
    return SetAssocCache(cfg)


def test_miss_then_hit():
    c = small_cache()
    assert c.access(0, tag=1, app=0) is False
    assert c.access(0, tag=1, app=0) is True
    assert c.stats[0].hits == 1
    assert c.stats[0].misses == 1


def test_lru_eviction_order():
    c = small_cache(assoc=2)
    c.access(0, tag=1, app=0)
    c.access(0, tag=2, app=0)
    c.access(0, tag=1, app=0)  # 1 becomes MRU, 2 is LRU
    c.access(0, tag=3, app=0)  # evicts 2
    assert c.contains(0, 1)
    assert not c.contains(0, 2)
    assert c.contains(0, 3)


def test_sets_are_independent():
    c = small_cache(assoc=1)
    c.access(0, tag=7, app=0)
    c.access(1, tag=7, app=0)
    assert c.contains(0, 7) and c.contains(1, 7)
    c.access(0, tag=8, app=0)  # evicts only from set 0
    assert not c.contains(0, 7)
    assert c.contains(1, 7)


def test_cross_app_eviction_tracks_owner():
    c = small_cache(assoc=1)
    c.access(0, tag=1, app=0)
    c.access(0, tag=2, app=1)  # app 1 evicts app 0's line
    occ = c.occupancy_by_app()
    assert occ.get(1) == 1
    assert occ.get(0) is None


def test_hit_by_other_app_transfers_ownership():
    c = small_cache()
    c.access(0, tag=1, app=0)
    c.access(0, tag=1, app=1)
    assert c.occupancy_by_app() == {1: 1}
    assert c.stats[1].hits == 1


def test_contains_does_not_touch_lru_or_stats():
    c = small_cache(assoc=2)
    c.access(0, tag=1, app=0)
    c.access(0, tag=2, app=0)
    before = (c.stats[0].hits, c.stats[0].misses)
    assert c.contains(0, 1)
    assert (c.stats[0].hits, c.stats[0].misses) == before
    c.access(0, tag=3, app=0)  # LRU must still be tag 1
    assert not c.contains(0, 1)


def test_flush_clears_everything():
    c = small_cache()
    c.access(0, tag=1, app=0)
    c.flush()
    assert not c.contains(0, 1)
    assert c.access(0, tag=1, app=0) is False


def test_hit_rate_property():
    c = small_cache()
    assert c.stats.get(0) is None
    c.access(0, 1, 0)
    c.access(0, 1, 0)
    c.access(0, 2, 0)
    assert c.stats[0].hit_rate == pytest.approx(1 / 3)


def test_occupancy_never_exceeds_assoc_per_set():
    c = small_cache(assoc=4, sets=2)
    for tag in range(100):
        c.access(tag % 2, tag, app=0)
    assert sum(c.occupancy_by_app().values()) <= 2 * 4


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=200))
def test_property_working_set_within_assoc_always_hits_after_warmup(tags):
    """Any access stream touching ≤ assoc distinct tags in one set never
    misses again once each tag has been touched."""
    c = small_cache(assoc=4)
    seen = set()
    for t in tags:
        hit = c.access(0, t, app=0)
        assert hit == (t in seen)
        seen.add(t)


@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 1000), st.integers(0, 2)),
        min_size=1,
        max_size=300,
    )
)
def test_property_stats_add_up(accesses):
    c = small_cache(assoc=4, sets=8)
    for s, t, a in accesses:
        c.access(s, t, a)
    total = sum(st_.accesses for st_ in c.stats.values())
    assert total == len(accesses)
    resident = sum(c.occupancy_by_app().values())
    assert resident <= 8 * 4
    misses = sum(st_.misses for st_ in c.stats.values())
    assert misses >= resident  # every resident line entered through a miss
