"""Nonstationarity test layer for the open-system driver (repro.opensys).

Covers the three legs the open-system extension stands on:

* **schedules** are frozen, seed-deterministic value objects whose Poisson
  constructor actually produces exponential inter-arrivals (KS-checked);
* **phase-shifting kernels** conserve the per-warp instruction budget
  exactly, for every split of the budget into phases;
* **the driver** applies arrivals/departures on interval boundaries only,
  with attach/detach accounting that survives the off-by-one traps
  (arrival exactly on a boundary, arrival past the run window), and the
  whole open-system pipeline is bit-identical inline, pooled, and
  checkpoint-resumed.
"""

import math
import pickle

import pytest

from repro.harness import run_workload, scaled_config
from repro.harness.parallel import WorkloadJob, run_jobs
from repro.opensys import (
    AppArrival,
    ArrivalSchedule,
    poisson_schedule,
    trace_schedule,
)
from repro.sim.kernel import AccessPattern, KernelPhase, KernelSpec, WarpStream
from repro.workloads import SUITE


# --------------------------------------------------------------- schedules


class TestArrivalSchedule:
    def test_poisson_is_seed_deterministic(self):
        a = poisson_schedule(0.1, 96_000, seed=2016, mean_lifetime=40_000)
        b = poisson_schedule(0.1, 96_000, seed=2016, mean_lifetime=40_000)
        assert a == b
        assert a.digest() == b.digest()

    def test_different_seeds_differ(self):
        a = poisson_schedule(0.2, 200_000, seed=1)
        b = poisson_schedule(0.2, 200_000, seed=2)
        assert a.digest() != b.digest()

    def test_pinned_digest(self):
        """Literal digest pin: any change to the RNG derivation, the draw
        order, or the digest serialization shows up here explicitly."""
        s = poisson_schedule(0.1, 96_000, seed=2016)
        assert s.digest() == (
            "fe900c6e2076b6f6b48961571d5a38c5fa87196845da3700041d1ffb32b5cd73"
        )

    def test_digest_ignores_provenance(self):
        arrivals = (AppArrival("NN", at=5_000, leave_at=9_000),)
        a = ArrivalSchedule(arrivals=arrivals, seed=1, rate=0.5, horizon=10_000)
        b = ArrivalSchedule(arrivals=arrivals, seed=99, rate=7.0)
        assert a.digest() == b.digest()

    def test_frozen_hashable_picklable(self):
        s = poisson_schedule(0.1, 50_000, seed=3, mean_lifetime=10_000)
        assert hash(s) == hash(poisson_schedule(0.1, 50_000, seed=3,
                                                mean_lifetime=10_000))
        assert pickle.loads(pickle.dumps(s)) == s
        with pytest.raises(Exception):
            s.seed = 4  # frozen dataclass

    def test_null_schedule(self):
        assert ArrivalSchedule().is_null
        assert not trace_schedule([("NN", 1_000)]).is_null
        assert not ArrivalSchedule(base_departures=((0, 5_000),)).is_null

    def test_validation(self):
        with pytest.raises(ValueError):
            AppArrival("NN", at=0)  # launch-time apps belong in the base
        with pytest.raises(ValueError):
            AppArrival("NN", at=10, leave_at=10)  # must leave after arriving
        with pytest.raises(ValueError):
            ArrivalSchedule(base_departures=((0, 100), (0, 200)))  # dup
        with pytest.raises(ValueError):
            poisson_schedule(0.0, 10_000, seed=1)
        with pytest.raises(ValueError):
            poisson_schedule(0.1, 10_000, seed=1, pool=())

    def test_max_arrivals_cap(self):
        s = poisson_schedule(1.0, 500_000, seed=4, max_arrivals=5)
        assert len(s.arrivals) == 5

    def test_inter_arrivals_are_exponential(self):
        """One-sample Kolmogorov–Smirnov test of the inter-arrival gaps
        against the exponential CDF at the configured rate.  ~600 samples
        put the 1% critical value near 0.066; integer rounding of arrival
        cycles adds a little distortion, so the gate is a loose 0.12 —
        tight enough to catch a uniform, normal, or doubled-rate process.
        """
        rate = 1.0  # arrivals per kilocycle → mean gap 1000 cycles
        s = poisson_schedule(rate, 600_000, seed=5)
        gaps = sorted(s.inter_arrival_cycles())
        n = len(gaps)
        assert n > 400
        mean = 1000.0 / rate
        ks = 0.0
        for i, x in enumerate(gaps):
            cdf = 1.0 - math.exp(-x / mean)
            ks = max(ks, abs((i + 1) / n - cdf), abs(i / n - cdf))
        assert ks < 0.12

    def test_lifetimes_inside_horizon_become_departures(self):
        s = poisson_schedule(0.5, 300_000, seed=6, mean_lifetime=5_000)
        leaves = [a for a in s.arrivals if a.leave_at is not None]
        assert leaves, "short lifetimes should schedule departures"
        for a in leaves:
            assert a.at < a.leave_at < 300_000


# ----------------------------------------------------- phase-shifting kernels


def _drain(stream: WarpStream) -> int:
    """Run a stream to exhaustion; return total instructions consumed."""
    total = 0
    while not stream.done:
        total += stream.next_compute_burst()
        stream.next_mem_access()
        total += 1
    return total


def _spec(phases=(), **kw) -> KernelSpec:
    base = dict(
        name="synthetic", compute_per_mem=3.0, insts_per_warp=240,
        blocks_total=4, warps_per_block=2, phases=tuple(phases),
    )
    base.update(kw)
    return KernelSpec(**base)


class TestKernelPhases:
    def test_phase_budget_must_match(self):
        with pytest.raises(ValueError):
            _spec(phases=(KernelPhase(insts=100),))  # 100 != 240

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            KernelPhase(insts=0)
        with pytest.raises(ValueError):
            KernelPhase(insts=10, store_fraction=1.5)

    def test_instruction_conservation_simple_split(self):
        spec = _spec(phases=(
            KernelPhase(insts=100, compute_per_mem=0.0),
            KernelPhase(insts=140, compute_per_mem=9.0,
                        pattern=AccessPattern.RANDOM),
        ))
        stream = WarpStream(spec, 0, 0, 0, seed=7, line_bytes=128)
        assert _drain(stream) == spec.insts_per_warp

    def test_single_full_phase_is_bit_identical_to_stationary(self):
        """A single phase with no overrides must reproduce the stationary
        fast path step for step — same RNG draws, same addresses."""
        plain = _spec()
        phased = _spec(phases=(KernelPhase(insts=plain.insts_per_warp),))
        a = WarpStream(plain, 0, 0, 0, seed=11, line_bytes=128)
        b = WarpStream(phased, 0, 0, 0, seed=11, line_bytes=128)
        while not a.done:
            assert a.next_compute_burst() == b.next_compute_burst()
            assert a.next_mem_access() == b.next_mem_access()
        assert b.done


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def phase_splits(draw):
    """A random partition of a random warp budget into 1–5 phases, each
    with independently-random knob overrides (or inherited None)."""
    n_phases = draw(st.integers(1, 5))
    sizes = [draw(st.integers(1, 80)) for _ in range(n_phases)]
    phases = []
    for size in sizes:
        phases.append(KernelPhase(
            insts=size,
            compute_per_mem=draw(st.one_of(
                st.none(), st.floats(0.0, 20.0, allow_nan=False))),
            store_fraction=draw(st.one_of(
                st.none(), st.floats(0.0, 1.0, allow_nan=False))),
            reuse_fraction=draw(st.one_of(
                st.none(), st.floats(0.0, 1.0, allow_nan=False))),
            pattern=draw(st.one_of(
                st.none(), st.sampled_from(list(AccessPattern)))),
        ))
    return tuple(phases)


class TestPhaseConservation:
    @given(phase_splits(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_any_split_conserves_the_budget(self, phases, seed):
        budget = sum(p.insts for p in phases)
        if budget < 2:
            phases = (KernelPhase(insts=2),)
            budget = 2
        spec = _spec(phases=phases, insts_per_warp=budget)
        stream = WarpStream(spec, 0, 0, 0, seed=seed, line_bytes=128)
        assert _drain(stream) == budget
        assert stream.remaining_insts == 0


# ------------------------------------------------------- driver boundaries


INTERVAL = scaled_config().interval_cycles


def _open_run(arrivals, shared_cycles, models=()):
    return run_workload(
        ["SD", "SB"], config=scaled_config(), shared_cycles=shared_cycles,
        models=models, arrivals=arrivals,
    )


@pytest.mark.slow
class TestDriverBoundaries:
    def test_off_boundary_arrival_waits_for_next_interval(self):
        # Arrival mid-interval: admitted at the next boundary, thanks to
        # the idle-headroom reserve; waiting is exactly the gap.
        at = 5_000
        res = _open_run(trace_schedule([("NN", at)]), shared_cycles=36_000)
        arrival_waiting = res.waiting_cycles[2]
        admit = at + arrival_waiting
        assert admit % INTERVAL == 0 and admit >= at
        assert arrival_waiting == INTERVAL - (at % INTERVAL)
        assert res.waiting_cycles[:2] == [0, 0]  # base apps never wait
        assert res.instructions[2] > 0
        assert res.resident_cycles[2] == 36_000 - admit
        assert res.resident_cycles[:2] == [36_000, 36_000]

    def test_on_boundary_arrival_is_admitted_immediately(self):
        # Arrival exactly on a boundary is applied on that same boundary
        # (the driver acts on `at <= now`), so it never waits.
        res = _open_run(
            trace_schedule([("NN", INTERVAL)]), shared_cycles=36_000
        )
        assert res.waiting_cycles[2] == 0
        assert res.resident_cycles[2] == 36_000 - INTERVAL

    def test_arrival_past_the_window_never_runs(self):
        res = _open_run(
            trace_schedule([("NN", 99_000)]), shared_cycles=36_000
        )
        assert res.instructions[2] == 0
        assert res.waiting_cycles[2] == 0  # never due, so never waited
        assert res.resident_cycles[2] == 0
        assert res.actual_slowdowns[2] is None
        # The base pair keeps running on the non-reserved SMs: expecting an
        # arrival holds back an idle admission reserve (n_sms // 8).
        cfg = scaled_config()
        reserve = max(1, cfg.n_sms // 8)
        assert sum(res.sm_partition) == cfg.n_sms - reserve
        assert res.sm_partition[2] == 0

    def test_departure_closes_the_residency_window(self):
        # NN (max_resident 2) drains in bounded time once asked to leave.
        res = _open_run(
            trace_schedule([("NN", 11_000, 23_000)]), shared_cycles=96_000
        )
        assert 0 < res.resident_cycles[2] < 96_000
        assert res.actual_slowdowns[2] is not None
        assert res.instructions[2] > 0
        # Partial-lifetime accounting: slowdown over the resident window.
        assert res.actual_slowdowns[2] == pytest.approx(
            res.resident_cycles[2] / res.alone_cycles[2], rel=1e-12
        )

    def test_null_schedule_is_closed_system_identity(self):
        a = run_workload(["SD", "SB"], config=scaled_config(),
                         shared_cycles=36_000, models=())
        b = _open_run(ArrivalSchedule(), shared_cycles=36_000)
        assert a.instructions == b.instructions
        assert a.alone_cycles == b.alone_cycles
        assert a.actual_slowdowns == b.actual_slowdowns
        assert b.resident_cycles == [] and b.waiting_cycles == []


# --------------------------------------------------- admission by migration


def _light(name: str) -> KernelSpec:
    """A kernel whose SMs drain within a couple of intervals: one resident
    block of one short warp at a time, so migration-based admission (no
    idle reserve to grab) completes inside a small test window."""
    return KernelSpec(
        name=name, compute_per_mem=4.0, blocks_total=10_000,
        warps_per_block=1, insts_per_warp=40, max_resident_blocks=1,
    )


def _tiny_config():
    import dataclasses

    return dataclasses.replace(scaled_config(), n_sms=4, interval_cycles=2_000)


@pytest.mark.slow
class TestMigrationAdmission:
    def test_arrival_admitted_by_draining_the_richest_donor(self):
        # Explicit full partition: no idle SMs, so the only way in is a
        # one-SM migration from the richest resident app.
        res = run_workload(
            [_light("A"), _light("B")], config=_tiny_config(),
            shared_cycles=24_000, sm_partition=[2, 2, 0],
            models=(), arrivals=trace_schedule([(_light("C"), 3_000)]),
        )
        assert res.instructions[2] > 0
        assert res.waiting_cycles[2] > 0  # waited out the donor's drain
        assert res.resident_cycles[2] > 0
        assert res.actual_slowdowns[2] is not None

    def test_never_admitted_when_the_window_closes_first(self):
        # Arrival lands on the last boundary with block-heavy donors: the
        # migration starts but no SM finishes draining before the run ends
        # — an empty residency window whose waiting time spans
        # arrival → run end.
        heavy = dict(compute_per_mem=4.0, warps_per_block=6,
                     blocks_total=10_000, insts_per_warp=4_000)
        res = run_workload(
            [KernelSpec(name="A", **heavy), KernelSpec(name="B", **heavy)],
            config=_tiny_config(),
            shared_cycles=24_000, sm_partition=[2, 2, 0],
            models=(), arrivals=trace_schedule([(_light("C"), 21_999)]),
        )
        assert res.instructions[2] == 0
        assert res.resident_cycles[2] == 0
        assert res.actual_slowdowns[2] is None
        assert res.waiting_cycles[2] == 24_000 - 21_999

    def test_base_departure_frees_its_sms_for_the_survivor(self):
        res = run_workload(
            [_light("A"), _light("B")], config=_tiny_config(),
            shared_cycles=24_000, sm_partition=[2, 2],
            models=(),
            arrivals=trace_schedule([], base_departures=[(1, 8_000)]),
        )
        assert res.resident_cycles[1] < 24_000  # B drained mid-run
        assert res.resident_cycles[0] == 24_000
        assert res.waiting_cycles == [0, 0]  # launch-time apps never wait
        # Ground truth still uses B's partial window.
        assert res.actual_slowdowns[1] == pytest.approx(
            res.resident_cycles[1] / res.alone_cycles[1], rel=1e-12
        )


# ------------------------------------------- inline == pooled == resumed


@pytest.mark.slow
def test_open_run_inline_pooled_resumed_identical(tmp_path):
    """The full open-system pipeline — arrivals, departure drain, partial
    windows, DASE on fragmented histories — must be bit-identical inline,
    through the process pool, and when restored from a sweep checkpoint."""
    sched = trace_schedule([("NN", 11_000, 23_000)])
    jobs = [WorkloadJob(
        apps=("SD", "SB"), config=scaled_config(), shared_cycles=48_000,
        models=("DASE",), arrivals=sched,
    )]
    inline = run_jobs(jobs, n_jobs=1)[0].unwrap().to_dict()
    pooled = run_jobs(jobs, n_jobs=2)[0].unwrap().to_dict()
    ckpt = tmp_path / "ckpt"
    first = run_jobs(jobs, n_jobs=1, checkpoint=ckpt)[0].unwrap().to_dict()
    resumed = run_jobs(jobs, n_jobs=1, checkpoint=ckpt)[0].unwrap().to_dict()
    assert inline == pooled == first == resumed


def test_dynamic_specs_resolve_against_the_suite():
    assert "NN" in SUITE  # the golden + churn scenarios depend on these
    assert "VA" in SUITE and "SC" in SUITE


# ------------------------------------------------------------- fig-churn


def test_package_exports_churn_lazily():
    """``repro.opensys.fig_churn`` resolves through the package's lazy
    ``__getattr__`` (a circular-import guard: churn imports the harness,
    which imports the schedule)."""
    import repro.opensys as pkg
    from repro.opensys.churn import DEFAULT_RATES, ChurnResult, fig_churn

    assert pkg.fig_churn is fig_churn
    assert pkg.ChurnResult is ChurnResult
    assert pkg.DEFAULT_RATES is DEFAULT_RATES
    with pytest.raises(AttributeError):
        pkg.does_not_exist


class TestChurnResult:
    def _result(self, even, fair):
        from repro.opensys.churn import ChurnResult

        return ChurnResult(
            base=("SD", "SB"), pool=("NN",), rates=[0.1], seed=1,
            mean_lifetime=1_000, shared_cycles=10_000,
            metrics={"even": {0.1: even}, "fair": {0.1: fair}},
        )

    def test_verdicts_respect_metric_direction(self):
        res = self._result(
            even={"unfairness": 2.0, "jain": 0.9, "p95": 3.0},
            fair={"unfairness": 1.5, "jain": 0.8, "p95": 3.0},
        )
        v = res.verdicts()[0.1]
        assert v["unfairness"] == "fair"   # lower is fairer
        assert v["jain"] == "even"         # higher is fairer
        assert v["p95"] == "tie"
        assert res.disagreements() and res.disagreements()[0]["rate"] == 0.1

    def test_agreement_is_not_a_disagreement(self):
        res = self._result(
            even={"unfairness": 2.0, "jain": 0.8},
            fair={"unfairness": 1.5, "jain": 0.9},
        )
        assert res.disagreements() == []

    def test_to_dict_is_json_serializable(self):
        import json

        res = self._result({"unfairness": 2.0}, {"unfairness": 1.0})
        d = json.loads(json.dumps(res.to_dict()))
        assert d["verdicts"]["0.1"]["unfairness"] == "fair"


@pytest.mark.slow
def test_fig_churn_smoke():
    """One-rate inline sweep: both policies run the same seeded schedule,
    and the readout carries DASE error + all five fairness metrics."""
    from repro.opensys.churn import fig_churn

    res = fig_churn(rates=(0.1,), seed=2016, mean_lifetime=10_000,
                    shared_cycles=36_000)
    assert res.failures == {}
    assert res.n_arrivals[0.1] == len(
        poisson_schedule(0.1, 36_000, seed=2016, mean_lifetime=10_000,
                         pool=("NN", "VA", "SC")).arrivals
    )
    assert 0.1 in res.schedule_digests
    for label in ("even", "fair"):
        m = res.metrics[label][0.1]
        assert set(m) >= {"unfairness", "jain", "p95", "p99"}
        assert res.dase_error[label][0.1] >= 0.0
    assert res.verdicts()  # every metric produced a verdict or a tie
