"""Unit tests for the SM processor-sharing model.

The SM is exercised through a minimal single-SM GPU so the warp ↔ memory
loop behaves exactly as in full runs.
"""

import pytest

from repro.config import GPUConfig
from repro.sim.gpu import GPU, LaunchedKernel
from repro.sim.kernel import AccessPattern, KernelSpec


def tiny_config(**over):
    over.setdefault("n_sms", 1)
    over.setdefault("interval_cycles", 100_000)
    return GPUConfig(**over)


def one_warp_kernel(**over):
    over.setdefault("compute_per_mem", 10)
    over.setdefault("warps_per_block", 1)
    over.setdefault("blocks_total", 1)
    over.setdefault("insts_per_warp", 100)
    over.setdefault("burst_jitter", 0.0)
    return KernelSpec("t", **over)


class TestSingleWarpTiming:
    def test_instruction_count_exact(self):
        spec = one_warp_kernel()
        gpu = GPU(tiny_config(), [LaunchedKernel(spec, restart=False)])
        gpu.run(1_000_000)
        assert gpu.progress[0].instructions == 100

    def test_serial_warp_time_is_compute_plus_memory(self):
        """One warp: total time ≈ instructions + rounds × memory latency."""
        spec = one_warp_kernel(compute_per_mem=9, insts_per_warp=100)
        cfg = tiny_config()
        gpu = GPU(cfg, [LaunchedKernel(spec, restart=False)])
        gpu.run(1_000_000)
        gpu.engine._heap.clear()
        rounds = 10  # 100 insts / (9 compute + 1 mem)
        min_latency = 2 * cfg.icnt_latency + cfg.l2_latency
        elapsed = 100 + rounds * min_latency
        # The finish event is the last memory response.
        assert gpu.sm_counters[0].busy_time >= 100
        assert gpu.sm_counters[0].stall_time >= rounds * min_latency * 0.8
        assert gpu.sm_counters[0].busy_time + gpu.sm_counters[0].stall_time >= (
            elapsed * 0.8
        )

    def test_alpha_zero_for_pure_parallel_compute(self):
        """Many warps with long compute bursts: latency fully hidden."""
        spec = KernelSpec(
            "c", compute_per_mem=200, warps_per_block=8, insts_per_warp=1000,
        )
        gpu = GPU(tiny_config(), [spec])
        gpu.run(30_000)
        assert gpu.sm_counters[0].alpha < 0.02

    def test_alpha_high_for_memory_flood(self):
        spec = KernelSpec(
            "m", compute_per_mem=0, warps_per_block=2, insts_per_warp=10_000,
            max_resident_blocks=1,
        )
        gpu = GPU(tiny_config(), [spec])
        gpu.run(30_000)
        assert gpu.sm_counters[0].alpha > 0.5


class TestProcessorSharing:
    def test_issue_rate_never_exceeds_width(self):
        spec = KernelSpec(
            "w", compute_per_mem=100, warps_per_block=8, insts_per_warp=5000,
        )
        cfg = tiny_config()
        gpu = GPU(cfg, [spec])
        gpu.run(20_000)
        ipc = gpu.progress[0].instructions / gpu.engine.now
        assert ipc <= cfg.issue_width + 1e-6

    def test_issue_rate_approaches_width_with_enough_warps(self):
        spec = KernelSpec(
            "w", compute_per_mem=100, warps_per_block=8, insts_per_warp=5000,
        )
        gpu = GPU(tiny_config(), [spec])
        # Long enough to amortize the pipeline fill (the first bursts only
        # retire after ~warps × burst cycles).
        gpu.run(60_000)
        ipc = gpu.progress[0].instructions / gpu.engine.now
        assert ipc > 0.9

    def test_wider_issue_config(self):
        spec = KernelSpec(
            "w", compute_per_mem=100, warps_per_block=8, insts_per_warp=5000,
        )
        gpu = GPU(tiny_config(issue_width=2), [spec])
        gpu.run(20_000)
        ipc = gpu.progress[0].instructions / gpu.engine.now
        assert 1.2 < ipc <= 2.0


class TestOccupancy:
    def test_block_capacity_by_warps(self):
        cfg = tiny_config()
        gpu = GPU(cfg, [KernelSpec("x", compute_per_mem=1, warps_per_block=12)])
        sm = gpu.sms[0]
        # 48 warps / 12 per block = 4 blocks, below the 8-block cap.
        assert sm.max_resident_blocks(12) == 4

    def test_block_capacity_by_block_cap(self):
        cfg = tiny_config()
        gpu = GPU(cfg, [KernelSpec("x", compute_per_mem=1, warps_per_block=2)])
        assert gpu.sms[0].max_resident_blocks(2) == cfg.max_blocks_per_sm

    def test_kernel_occupancy_limit_respected(self):
        spec = KernelSpec(
            "x", compute_per_mem=5, warps_per_block=4, max_resident_blocks=2,
        )
        gpu = GPU(tiny_config(), [spec])
        gpu.run(1000)
        assert len(gpu.sms[0].blocks) == 2

    def test_blocks_refill_as_they_finish(self):
        spec = KernelSpec(
            "x", compute_per_mem=2, warps_per_block=2, insts_per_warp=20,
            blocks_total=1000,
        )
        gpu = GPU(tiny_config(), [spec])
        gpu.run(20_000)
        assert gpu.progress[0].blocks_finished > 10
        # SM stays fully occupied while work remains.
        assert len(gpu.sms[0].blocks) == gpu.sms[0].max_resident_blocks(2)


class TestDraining:
    def test_draining_sm_accepts_no_new_blocks(self):
        spec = KernelSpec(
            "x", compute_per_mem=5, warps_per_block=4, insts_per_warp=40,
        )
        gpu = GPU(tiny_config(n_sms=2), [spec, KernelSpec(
            "y", compute_per_mem=5, warps_per_block=4, insts_per_warp=40,
        )], sm_partition=[1, 1])
        gpu.run(100)
        sm = gpu.sms[0]
        drained = []
        sm.start_draining(drained.append)
        assert not sm.can_accept_block(4)
        gpu.run(100_000)
        assert drained == [sm]
        assert sm.app is None

    def test_drain_empty_sm_fires_immediately(self):
        gpu = GPU(tiny_config(n_sms=2), [
            KernelSpec("x", compute_per_mem=5, warps_per_block=4),
            KernelSpec("y", compute_per_mem=5, warps_per_block=4),
        ], sm_partition=[1, 1])
        # SM 1 belongs to app 1 but has no blocks yet (run not started).
        drained = []
        gpu.sms[1].start_draining(drained.append)
        assert drained == [gpu.sms[1]]

    def test_cannot_reassign_sm_with_blocks(self):
        spec = KernelSpec("x", compute_per_mem=5, warps_per_block=4)
        gpu = GPU(tiny_config(), [spec])
        gpu.run(100)
        with pytest.raises(RuntimeError):
            gpu.sms[0].assign_app(None)


class TestMigration:
    def two_app_gpu(self):
        mk = lambda n: KernelSpec(
            n, compute_per_mem=10, warps_per_block=4, insts_per_warp=60,
        )
        cfg = tiny_config(n_sms=4)
        return GPU(cfg, [mk("a"), mk("b")], sm_partition=[2, 2])

    def test_migrate_moves_ownership_after_drain(self):
        gpu = self.two_app_gpu()
        gpu.run(100)
        gpu.migrate_sms(0, 1, 1)
        gpu.run(100_000)
        assert gpu.sm_counts() == [1, 3]

    def test_migrate_never_takes_last_sm(self):
        gpu = self.two_app_gpu()
        gpu.run(100)
        gpu.migrate_sms(0, 1, 99)
        gpu.run(100_000)
        counts = gpu.sm_counts()
        assert counts[0] >= 1

    def test_migrated_sm_runs_new_apps_blocks(self):
        gpu = self.two_app_gpu()
        gpu.run(100)
        gpu.migrate_sms(0, 1, 1)
        gpu.run(100_000)
        moved = [sm for sm in gpu.sms if sm.app == 1]
        assert len(moved) == 3
        assert all(b.app == 1 for sm in moved for b in sm.blocks)
