"""Tests for the memory-controller scheduler options (FR-FCFS vs app-RR)."""

import pytest

from repro.config import GPUConfig
from repro.sim.address import AddressMapper
from repro.sim.dram import MemoryPartition
from repro.sim.engine import Engine
from repro.sim.gpu import GPU
from repro.sim.kernel import KernelSpec
from repro.sim.stats import MemoryStats


def make_partition(scheduler, n_apps=2):
    cfg = GPUConfig(mc_scheduler=scheduler)
    eng = Engine()
    stats = MemoryStats(n_apps)
    return eng, cfg, MemoryPartition(eng, cfg, 0, n_apps, stats), stats


def addr(cfg, bank, row, line=0):
    m = AddressMapper(cfg)
    return m.decode(m.encode(0, m.local_coords(bank, row, line)))


def test_bad_scheduler_rejected():
    with pytest.raises(ValueError):
        GPUConfig(mc_scheduler="bogus")


def test_rr_alternates_between_apps():
    """With both apps queued on one bank, RR serves them in turns even when
    FR-FCFS row locality would favour one app."""
    eng, cfg, part, stats = make_partition("rr")
    # Open row 0 for app 0 and enqueue a burst of row hits from app 0 plus
    # row misses from app 1 while the bank is busy.
    done: list[tuple[int, int]] = []
    for i in range(3):
        part.access(addr(cfg, 0, 0, i), 0, lambda t, app=0: done.append((app, t)))
    for i in range(3):
        part.access(addr(cfg, 0, 5, i), 1, lambda t, app=1: done.append((app, t)))
    eng.run()
    order = [app for app, _ in done]
    # Pure FR-FCFS would serve all of app 0's row hits first; RR must
    # interleave at least one app-1 request before app 0 finishes.
    first_app1 = order.index(1)
    assert first_app1 < 3, f"RR never interleaved: {order}"


def test_frfcfs_prefers_row_hits_across_apps():
    eng, cfg, part, stats = make_partition("frfcfs")
    done: list[tuple[int, int]] = []
    for i in range(3):
        part.access(addr(cfg, 0, 0, i), 0, lambda t, app=0: done.append((app, t)))
    for i in range(3):
        part.access(addr(cfg, 0, 5, i), 1, lambda t, app=1: done.append((app, t)))
    eng.run()
    order = [app for app, _ in done]
    # The first request opens row 0; subsequent row-0 hits go first.
    assert order[:3] == [0, 0, 0], order


@pytest.mark.slow
def test_rr_reduces_unfairness_under_flood():
    """A bandwidth hog vs an occupancy-limited victim: the app-aware RR
    scheduler narrows the victim's served-request starvation."""
    victim = KernelSpec(
        "v", compute_per_mem=20, warps_per_block=4, max_resident_blocks=2,
    )
    hog = KernelSpec("h", compute_per_mem=0, warps_per_block=6)

    def victim_share(scheduler):
        cfg = GPUConfig(interval_cycles=10_000, mc_scheduler=scheduler)
        gpu = GPU(cfg, [victim, hog])
        gpu.run(40_000)
        apps = gpu.mem_stats.apps
        return apps[0].requests_served / max(1, apps[1].requests_served)

    assert victim_share("rr") > victim_share("frfcfs")
