"""Robustness: extreme configurations and degenerate workloads must not
crash or violate invariants."""

import pytest

from repro.config import CacheConfig, DRAMTimings, GPUConfig
from repro.core import ASM, DASE, MISE, PriorityRotator
from repro.sim.gpu import GPU, LaunchedKernel
from repro.sim.kernel import AccessPattern, KernelSpec


def run(cfg, kernels, cycles=8_000, partition=None):
    gpu = GPU(cfg, kernels, partition)
    gpu.run(cycles)
    return gpu


class TestExtremeConfigs:
    def test_single_sm_single_partition(self):
        cfg = GPUConfig(n_sms=1, n_partitions=1, interval_cycles=2_000)
        gpu = run(cfg, [KernelSpec("k", compute_per_mem=5)])
        assert gpu.progress[0].instructions > 0

    def test_many_small_partitions(self):
        cfg = GPUConfig(n_partitions=12, interval_cycles=2_000)
        gpu = run(cfg, [KernelSpec("k", compute_per_mem=5)])
        assert gpu.mem_stats.apps[0].requests_served > 0

    def test_two_banks(self):
        cfg = GPUConfig(n_banks=2, interval_cycles=2_000)
        gpu = run(cfg, [KernelSpec("k", compute_per_mem=2)])
        assert gpu.mem_stats.apps[0].requests_served > 0

    def test_tiny_l2(self):
        cfg = GPUConfig(
            l2=CacheConfig(size_bytes=8 * 128 * 2, line_bytes=128, assoc=2),
            interval_cycles=2_000,
        )
        gpu = run(cfg, [KernelSpec("k", compute_per_mem=5, reuse_fraction=0.5)])
        m = gpu.mem_stats.apps[0]
        assert m.l2_hits + m.l2_misses > 0

    def test_slow_dram(self):
        cfg = GPUConfig(dram=DRAMTimings(tRP=40, tRCD=40, tCL=40, tBurst=16),
                        interval_cycles=2_000)
        gpu = run(cfg, [KernelSpec("k", compute_per_mem=2, warps_per_block=2)])
        assert gpu.sm_counters[0].alpha > 0.1

    def test_zero_latency_interconnect(self):
        cfg = GPUConfig(icnt_latency=0, l2_latency=0, interval_cycles=2_000)
        gpu = run(cfg, [KernelSpec("k", compute_per_mem=5)])
        assert gpu.progress[0].instructions > 0

    def test_no_issue_gap(self):
        cfg = GPUConfig(mc_issue_gap=0, interval_cycles=2_000)
        gpu = run(cfg, [KernelSpec("k", compute_per_mem=1)])
        assert gpu.bandwidth_utilization() > 0.3

    def test_wide_issue(self):
        cfg = GPUConfig(issue_width=4, interval_cycles=2_000)
        gpu = run(cfg, [KernelSpec("k", compute_per_mem=100, warps_per_block=8)])
        ipc = gpu.progress[0].instructions / gpu.engine.now
        assert 1.0 < ipc <= 4.0 * cfg.n_sms


class TestDegenerateWorkloads:
    def test_max_apps(self):
        cfg = GPUConfig(interval_cycles=2_000)
        kernels = [
            KernelSpec(f"k{i}", compute_per_mem=10, warps_per_block=2)
            for i in range(16)
        ]
        gpu = run(cfg, kernels)  # one SM each
        assert gpu.sm_counts() == [1] * 16

    def test_pure_compute_app_makes_no_requests(self):
        # compute_per_mem huge relative to run length: almost pure compute.
        cfg = GPUConfig(interval_cycles=2_000)
        spec = KernelSpec(
            "c", compute_per_mem=50_000, insts_per_warp=50_002,
            warps_per_block=2,
        )
        gpu = run(cfg, [spec])
        assert gpu.mem_stats.apps[0].requests_served == 0
        assert gpu.sm_counters[0].alpha == 0.0

    def test_single_tiny_block_finishes_and_idles(self):
        cfg = GPUConfig(n_sms=2, interval_cycles=2_000)
        k = LaunchedKernel(
            KernelSpec("t", compute_per_mem=2, warps_per_block=1,
                       insts_per_warp=10, blocks_total=1),
            restart=False,
        )
        gpu = GPU(cfg, [k, KernelSpec("o", compute_per_mem=5)],
                  sm_partition=[1, 1])
        gpu.run(30_000)
        assert gpu.progress[0].blocks_finished == 1
        assert gpu.progress[0].instructions == 10

    def test_estimators_survive_idle_app(self):
        cfg = GPUConfig(n_sms=2, interval_cycles=2_000)
        idle = LaunchedKernel(
            KernelSpec("t", compute_per_mem=2, warps_per_block=1,
                       insts_per_warp=10, blocks_total=1),
            restart=False,
        )
        gpu = GPU(cfg, [idle, KernelSpec("o", compute_per_mem=5)],
                  sm_partition=[1, 1])
        dase = DASE(cfg)
        rot = PriorityRotator(cfg, epoch_cycles=250)
        mise = MISE(cfg, rot)
        asm = ASM(cfg, rot)
        for e in (dase, mise, asm):
            e.attach(gpu)
        gpu.run(20_000)
        # The idle app's estimates may be None or 1.0-ish, never a crash.
        for e in (dase, mise, asm):
            for row in e.history:
                assert len(row) == 2

    def test_uncoalesced_wide_combo(self):
        cfg = GPUConfig(interval_cycles=2_000)
        spec = KernelSpec(
            "u", compute_per_mem=10, accesses_per_mem_inst=3,
            wide_fraction=0.5, pattern=AccessPattern.RANDOM,
        )
        gpu = run(cfg, [spec])
        assert gpu.mem_stats.apps[0].requests_served > 0


class TestReconfiguredEstimation:
    def test_dase_with_one_partition(self):
        cfg = GPUConfig(n_partitions=1, interval_cycles=2_000)
        gpu = GPU(cfg, [KernelSpec("a", compute_per_mem=5),
                        KernelSpec("b", compute_per_mem=5)])
        dase = DASE(cfg)
        dase.attach(gpu)
        gpu.run(10_000)
        for row in dase.history:
            for est in row:
                assert est is None or est >= 1.0

    def test_dase_interval_longer_than_run(self):
        cfg = GPUConfig(interval_cycles=1_000_000)
        gpu = GPU(cfg, [KernelSpec("a", compute_per_mem=5)])
        dase = DASE(cfg)
        dase.attach(gpu)
        gpu.run(10_000)
        assert dase.history == []
        assert dase.mean_estimates() == []
