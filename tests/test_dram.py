"""Unit tests for the memory partition (L2 + FR-FCFS DRAM controller)."""

import pytest

from repro.config import CacheConfig, GPUConfig
from repro.sim.address import AddressMapper
from repro.sim.dram import MemoryPartition
from repro.sim.engine import Engine
from repro.sim.stats import MemoryStats


def make_partition(n_apps=2, **cfg_overrides):
    cfg = GPUConfig(**cfg_overrides)
    eng = Engine()
    stats = MemoryStats(n_apps)
    part = MemoryPartition(eng, cfg, 0, n_apps, stats)
    return eng, cfg, part, stats


def addr_for(cfg, partition, bank, row, line_in_row=0):
    """Build a byte address decoding to the given (partition, bank, row)."""
    mapper = AddressMapper(cfg)
    return mapper.encode(partition, mapper.local_coords(bank, row, line_in_row))


def decode(cfg, byte_addr):
    return AddressMapper(cfg).decode(byte_addr)


class TestL2Path:
    def test_l2_hit_served_at_l2_latency(self):
        eng, cfg, part, stats = make_partition()
        a = decode(cfg, addr_for(cfg, 0, 0, 0))
        done = []
        part.access(a, 0, lambda t: done.append(t))
        eng.run()
        miss_latency = done[0]  # issued at t=0
        done.clear()
        t0 = eng.now
        part.access(a, 0, lambda t: done.append(t))
        eng.run()
        assert done[0] == t0 + cfg.l2_latency  # pure L2 hit
        assert miss_latency > cfg.l2_latency  # the miss was slower
        assert stats.apps[0].l2_hits == 1
        assert stats.apps[0].l2_misses == 1

    def test_miss_goes_to_dram_and_counts(self):
        eng, cfg, part, stats = make_partition()
        a = decode(cfg, addr_for(cfg, 0, 3, 7))
        part.access(a, 1, lambda t: None)
        eng.run()
        assert stats.apps[1].requests_served == 1
        assert stats.apps[1].row_misses == 1
        assert part.bank_open_row[3] == 7


class TestRowBufferBehaviour:
    def test_row_hit_faster_than_row_miss(self):
        eng, cfg, part, _ = make_partition()
        a1 = decode(cfg, addr_for(cfg, 0, 0, 0, line_in_row=0))
        a2 = decode(cfg, addr_for(cfg, 0, 0, 0, line_in_row=1))  # same row
        a3 = decode(cfg, addr_for(cfg, 0, 0, 5))  # same bank, other row
        times = {}
        part.access(a1, 0, lambda t: times.__setitem__("miss", t))
        eng.run()
        t0 = eng.now
        part.access(a2, 0, lambda t: times.__setitem__("hit", t))
        eng.run()
        t1 = eng.now
        part.access(a3, 0, lambda t: times.__setitem__("miss2", t))
        eng.run()
        hit_latency = times["hit"] - t0
        miss_latency = times["miss2"] - t1
        # Penalty as the controller computes it (each latency is converted
        # to core cycles separately, so compose the same way).
        penalty = cfg.dram_cycles_to_core(
            cfg.dram.tRP + cfg.dram.tRCD + cfg.dram.tCL
        ) - cfg.dram_cycles_to_core(cfg.dram.tCL)
        assert miss_latency - hit_latency == penalty

    def test_row_hit_counted(self):
        eng, cfg, part, stats = make_partition()
        a1 = decode(cfg, addr_for(cfg, 0, 0, 0, 0))
        a2 = decode(cfg, addr_for(cfg, 0, 0, 0, 1))
        part.access(a1, 0, lambda t: None)
        eng.run()
        part.access(a2, 0, lambda t: None)
        eng.run()
        assert stats.apps[0].row_hits == 1
        assert stats.apps[0].row_misses == 1


class TestRowBufferInterferenceDetection:
    def test_erb_miss_detected_when_corunner_closes_row(self):
        eng, cfg, part, stats = make_partition()
        row_a = decode(cfg, addr_for(cfg, 0, 0, 0))
        row_b = decode(cfg, addr_for(cfg, 0, 0, 9))
        part.access(row_a, 0, lambda t: None)  # app 0 opens row 0
        eng.run()
        part.access(row_b, 1, lambda t: None)  # app 1 closes it
        eng.run()
        row_a2 = decode(cfg, addr_for(cfg, 0, 0, 0, 1))
        part.access(row_a2, 0, lambda t: None)  # app 0 returns to row 0
        eng.run()
        assert stats.apps[0].erb_miss == 1
        assert stats.apps[1].erb_miss == 0

    def test_own_row_switch_not_counted(self):
        """An app alternating its own rows suffers misses but they are not
        *extra* (interference) misses."""
        eng, cfg, part, stats = make_partition(n_apps=1)
        # Distinct lines (so the L2 never absorbs them) alternating rows.
        seq = [
            decode(cfg, addr_for(cfg, 0, 0, row, line))
            for line, row in enumerate([0, 1, 0, 1])
        ]
        for a in seq:
            part.access(a, 0, lambda t: None)
            eng.run()
        assert stats.apps[0].row_misses == 4
        assert stats.apps[0].erb_miss == 0


class TestBankParallelismAndBus:
    def test_two_banks_overlap_but_bus_serializes(self):
        eng, cfg, part, _ = make_partition()
        a0 = decode(cfg, addr_for(cfg, 0, 0, 0))
        a1 = decode(cfg, addr_for(cfg, 0, 1, 0))
        done = []
        part.access(a0, 0, lambda t: done.append(t))
        part.access(a1, 0, lambda t: done.append(t))
        eng.run()
        burst = cfg.dram_cycles_to_core(cfg.dram.tBurst)
        gap = cfg.mc_issue_gap
        # Bank work overlapped: completions separated by the larger of the
        # bus burst and the controller issue gap, not a full service time.
        assert done[1] - done[0] <= max(burst, gap) + 1
        service = cfg.dram_cycles_to_core(
            cfg.dram.tRP + cfg.dram.tRCD + cfg.dram.tCL
        )
        assert done[1] - done[0] < service

    def test_same_bank_serializes_fully(self):
        eng, cfg, part, _ = make_partition()
        a0 = decode(cfg, addr_for(cfg, 0, 0, 0, 0))
        a1 = decode(cfg, addr_for(cfg, 0, 0, 4, 0))  # same bank, new row
        done = []
        part.access(a0, 0, lambda t: done.append(t))
        part.access(a1, 0, lambda t: done.append(t))
        eng.run()
        service = cfg.dram_cycles_to_core(
            cfg.dram.tRP + cfg.dram.tRCD + cfg.dram.tCL + cfg.dram.tBurst
        )
        assert done[1] - done[0] >= service

    def test_issue_gap_enforced(self):
        eng, cfg, part, _ = make_partition(mc_issue_gap=50)
        done = []
        for bank in range(4):
            a = decode(cfg, addr_for(cfg, 0, bank, 0))
            part.access(a, 0, lambda t: done.append(t))
        eng.run()
        assert len(done) == 4
        spans = [b - a for a, b in zip(done, done[1:])]
        assert all(s >= 50 for s in spans)


class TestFRFCFS:
    def test_row_hit_bypasses_older_row_miss(self):
        eng, cfg, part, _ = make_partition()
        opener = decode(cfg, addr_for(cfg, 0, 0, 0, 0))
        part.access(opener, 0, lambda t: None)
        eng.run()
        # Bank 0 now holds row 0.  Enqueue (older) row-miss then row-hit
        # while the bank is busy with a filler request.
        filler = decode(cfg, addr_for(cfg, 0, 0, 2, 0))
        miss = decode(cfg, addr_for(cfg, 0, 0, 1, 0))
        hit = decode(cfg, addr_for(cfg, 0, 0, 2, 1))
        done = {}
        part.access(filler, 0, lambda t: done.setdefault("filler", t))
        part.access(miss, 0, lambda t: done.setdefault("miss", t))
        part.access(hit, 0, lambda t: done.setdefault("hit", t))
        eng.run()
        # After the filler leaves row 2 open, the row-hit request (younger)
        # must be served before the row-miss request.
        assert done["hit"] < done["miss"]

    def test_priority_app_served_first(self):
        eng, cfg, part, _ = make_partition()
        part.set_priority(1)
        opener = decode(cfg, addr_for(cfg, 0, 0, 5, 0))
        part.access(opener, 0, lambda t: None)
        eng.run()
        lo = decode(cfg, addr_for(cfg, 0, 0, 6, 0))
        hi = decode(cfg, addr_for(cfg, 0, 0, 7, 0))
        filler = decode(cfg, addr_for(cfg, 0, 0, 8, 0))
        done = {}
        part.access(filler, 0, lambda t: done.setdefault("filler", t))
        part.access(lo, 0, lambda t: done.setdefault("lo", t))
        part.access(hi, 1, lambda t: done.setdefault("hi", t))
        eng.run()
        assert done["hi"] < done["lo"]

    def test_clearing_priority_restores_fcfs(self):
        eng, cfg, part, _ = make_partition()
        part.set_priority(1)
        part.set_priority(None)
        assert part.priority_app is None


class TestCounters:
    def test_time_request_accumulates(self):
        eng, cfg, part, stats = make_partition()
        a = decode(cfg, addr_for(cfg, 0, 0, 0))
        part.access(a, 0, lambda t: None)
        eng.run()
        service = cfg.dram_cycles_to_core(
            cfg.dram.tRP + cfg.dram.tRCD + cfg.dram.tCL
        ) + cfg.dram_cycles_to_core(cfg.dram.tBurst)
        assert stats.apps[0].time_request == service

    def test_data_bus_time_is_burst_per_request(self):
        eng, cfg, part, stats = make_partition()
        for bank in range(3):
            part.access(decode(cfg, addr_for(cfg, 0, bank, 0)), 0, lambda t: None)
        eng.run()
        assert stats.apps[0].data_bus_time == 3 * cfg.dram_cycles_to_core(
            cfg.dram.tBurst
        )

    def test_busy_time_covers_active_window(self):
        eng, cfg, part, stats = make_partition()
        part.access(decode(cfg, addr_for(cfg, 0, 0, 0)), 0, lambda t: None)
        eng.run()
        assert part.busy_time > 0
        assert part.busy_time <= eng.now

    def test_queue_length_reports_waiting_requests(self):
        eng, cfg, part, _ = make_partition(mc_issue_gap=1000)
        for i in range(5):
            part.access(decode(cfg, addr_for(cfg, 0, 0, i)), 0, lambda t: None)
        eng.run(until=cfg.l2_latency + 2)
        assert part.queue_length() >= 4
