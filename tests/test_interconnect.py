"""Unit tests for the crossbar interconnect."""

import pytest

from repro.sim.engine import Engine
from repro.sim.interconnect import Crossbar, CrossbarPort


class TestPort:
    def test_single_packet_takes_serialization_plus_latency(self):
        eng = Engine()
        port = CrossbarPort(eng, latency=20, packet_cycles=2)
        arrivals = []
        t = port.send(lambda: arrivals.append(eng.now))
        assert t == 22
        eng.run()
        assert arrivals == [22]

    def test_back_to_back_packets_serialize(self):
        eng = Engine()
        port = CrossbarPort(eng, latency=20, packet_cycles=2)
        t1 = port.send(lambda: None)
        t2 = port.send(lambda: None)
        t3 = port.send(lambda: None)
        assert t2 - t1 == 2
        assert t3 - t2 == 2

    def test_idle_gap_resets_serialization(self):
        eng = Engine()
        port = CrossbarPort(eng, latency=10, packet_cycles=4)
        port.send(lambda: None)
        eng.run()  # drain
        t = port.send(lambda: None)
        assert t == eng.now + 14

    def test_counters(self):
        eng = Engine()
        port = CrossbarPort(eng, latency=10, packet_cycles=3)
        port.send(lambda: None)
        port.send(lambda: None)
        assert port.packets == 2
        assert port.busy_time == 6


class TestCrossbar:
    def test_ports_are_independent(self):
        eng = Engine()
        xbar = Crossbar(eng, n_ports=2, latency=20, packet_cycles=5)
        t0 = xbar.send(0, lambda: None)
        t1 = xbar.send(1, lambda: None)
        assert t0 == t1  # no cross-port contention

    def test_same_port_contends(self):
        eng = Engine()
        xbar = Crossbar(eng, n_ports=2, latency=20, packet_cycles=5)
        t0 = xbar.send(0, lambda: None)
        t1 = xbar.send(0, lambda: None)
        assert t1 - t0 == 5

    def test_utilization(self):
        eng = Engine()
        xbar = Crossbar(eng, n_ports=2, latency=0, packet_cycles=10)
        xbar.send(0, lambda: None)
        eng.run()
        assert xbar.utilization(20) == pytest.approx(10 / 40)
        assert xbar.total_packets == 1

    def test_zero_ports_rejected(self):
        with pytest.raises(ValueError):
            Crossbar(Engine(), 0, 1, 1)


class TestIntegration:
    def test_gpu_crossbar_carries_all_traffic(self):
        from repro.config import GPUConfig
        from repro.sim.gpu import GPU
        from repro.sim.kernel import KernelSpec

        cfg = GPUConfig(interval_cycles=5_000)
        gpu = GPU(cfg, [KernelSpec("k", compute_per_mem=5, warps_per_block=4)])
        gpu.run(10_000)
        m = gpu.mem_stats.apps[0]
        accesses = m.l2_hits + m.l2_misses
        # Every partition access travelled the request crossbar (packets
        # still in flight make the packet count ≥ the arrival count).
        assert gpu.xbar_request.total_packets >= accesses > 0
        # Replies: at most one per request.
        assert gpu.xbar_reply.total_packets <= gpu.xbar_request.total_packets
        assert 0.0 < gpu.xbar_request.utilization(gpu.engine.now) < 1.0

    def test_crossbar_not_the_bottleneck_at_baseline(self):
        """DRAM saturates long before the crossbar (paper's premise that
        memory is where interference lives)."""
        from repro.config import GPUConfig
        from repro.sim.gpu import GPU
        from repro.workloads import SUITE

        cfg = GPUConfig(interval_cycles=10_000)
        gpu = GPU(cfg, [SUITE["SB"]])
        gpu.run(30_000)
        assert gpu.bandwidth_utilization() > 0.6  # DRAM near saturation
        assert gpu.xbar_request.utilization(gpu.engine.now) < 0.5
