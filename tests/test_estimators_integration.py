"""End-to-end estimator tests on live simulations (slower than units)."""

import pytest

from repro.config import GPUConfig
from repro.core import ASM, DASE, MISE, PriorityRotator
from repro.sim.gpu import GPU, LaunchedKernel
from repro.sim.kernel import KernelSpec
from repro.workloads import SUITE

CFG = GPUConfig(interval_cycles=10_000)


def run_with_estimators(names, cycles=60_000, sm_partition=None):
    kernels = [LaunchedKernel(SUITE[n], stream_id=i) for i, n in enumerate(names)]
    gpu = GPU(CFG, kernels, sm_partition)
    dase = DASE(CFG)
    rot = PriorityRotator(CFG)
    mise = MISE(CFG, rot)
    asm = ASM(CFG, rot)
    for est in (dase, mise, asm):
        est.attach(gpu)
    gpu.run(cycles)
    return gpu, dase, mise, asm


@pytest.mark.slow
class TestLiveEstimates:
    def test_all_models_produce_estimates(self):
        _, dase, mise, asm = run_with_estimators(["SD", "SA"])
        for model in (dase, mise, asm):
            ests = model.mean_estimates()
            assert len(ests) == 2
            assert all(e is not None for e in ests), model.name

    def test_estimates_at_least_one(self):
        _, dase, mise, asm = run_with_estimators(["SD", "SB"])
        for model in (dase, mise, asm):
            for e in model.mean_estimates():
                assert e >= 1.0

    def test_dase_sees_sm_scaling_for_light_apps(self):
        """Two compute-bound apps on half the SMs each: DASE ≈ 2.0."""
        _, dase, _, _ = run_with_estimators(["QR", "CT"])
        for e in dase.mean_estimates():
            assert e == pytest.approx(2.0, rel=0.15)

    def test_dase_victim_estimate_exceeds_aggressor(self):
        _, dase, _, _ = run_with_estimators(["SD", "SB"])
        sd, sb = dase.mean_estimates()
        assert sd > sb

    def test_mbb_classification_of_sb(self):
        """SB paired with a light app must take the MBB path (measured
        without the MISE/ASM priority epochs, which throttle SB during the
        partner's priority windows and keep totals under Requestmax)."""
        kernels = [
            LaunchedKernel(SUITE[n], stream_id=i)
            for i, n in enumerate(["SB", "QR"])
        ]
        gpu = GPU(CFG, kernels)
        dase = DASE(CFG)
        dase.attach(gpu)
        gpu.run(80_000)
        mbb_flags = [row[0].mbb for row in dase.breakdowns[1:]]
        assert any(mbb_flags)

    def test_nmbb_classification_of_compute_pair(self):
        gpu, dase, _, _ = run_with_estimators(["QR", "CT"])
        for row in dase.breakdowns:
            assert not row[0].mbb
            assert not row[1].mbb

    def test_history_one_row_per_interval(self):
        gpu, dase, mise, asm = run_with_estimators(["SD", "SA"], cycles=50_000)
        assert len(dase.history) == 5
        assert len(mise.history) == 5
        assert len(asm.history) == 5

    def test_uneven_partition_scaling(self):
        """App with 4 of 16 SMs: DASE estimate ≈ 4× for a clean app."""
        _, dase, _, _ = run_with_estimators(
            ["QR", "CT"], sm_partition=[4, 12]
        )
        qr, ct = dase.mean_estimates()
        assert qr == pytest.approx(4.0, rel=0.2)
        assert ct == pytest.approx(16 / 12, rel=0.2)


@pytest.mark.slow
class TestRotatorSharing:
    def test_mise_asm_share_one_rotator(self):
        kernels = [SUITE["SD"], SUITE["SA"]]
        gpu = GPU(CFG, kernels)
        rot = PriorityRotator(CFG)
        mise = MISE(CFG, rot)
        asm = ASM(CFG, rot)
        mise.attach(gpu)
        asm.attach(gpu)  # must reuse, not re-attach, the rotator
        gpu.run(30_000)
        assert mise.history and asm.history

    def test_rotator_on_wrong_gpu_rejected(self):
        gpu1 = GPU(CFG, [SUITE["SD"]])
        gpu2 = GPU(CFG, [SUITE["SD"]])
        rot = PriorityRotator(CFG)
        MISE(CFG, rot).attach(gpu1)
        with pytest.raises(RuntimeError):
            MISE(CFG, rot).attach(gpu2)
