"""Tests for the temporal-multitasking and LEFTOVER baselines."""

import pytest

from repro.config import GPUConfig
from repro.policies import TimeSlicePolicy, leftover_partition
from repro.sim.gpu import GPU, LaunchedKernel
from repro.sim.kernel import KernelSpec


def make_gpu(n_sms=8, interval=3_000, blocks_total=10_000, restart=True):
    cfg = GPUConfig(n_sms=n_sms, interval_cycles=interval)
    mk = lambda n, bt: LaunchedKernel(
        KernelSpec(n, compute_per_mem=10, warps_per_block=4,
                   insts_per_warp=120, blocks_total=bt),
        restart=restart,
    )
    return cfg, GPU(cfg, [mk("a", blocks_total), mk("b", blocks_total)])


class TestTimeSlice:
    def test_initial_slice_gives_gpu_to_app0(self):
        cfg, gpu = make_gpu()
        pol = TimeSlicePolicy(cfg, quantum_intervals=2)
        pol.attach(gpu)
        gpu.run(30_000)
        assert pol.switches[0][1] == 0
        # At some point app 0 held 7 of 8 SMs.
        assert max(c for c, _ in [(gpu.sm_counts()[0], 0)]) >= 1  # sanity

    def test_rotation_happens(self):
        cfg, gpu = make_gpu()
        pol = TimeSlicePolicy(cfg, quantum_intervals=1)
        pol.attach(gpu)
        gpu.run(60_000)
        actives = [a for _, a in pol.switches]
        assert 0 in actives and 1 in actives
        assert len(pol.switches) >= 3

    def test_active_app_holds_most_sms(self):
        cfg, gpu = make_gpu()
        pol = TimeSlicePolicy(cfg, quantum_intervals=50)  # never rotate
        pol.attach(gpu)
        gpu.run(40_000)
        counts = gpu.sm_counts()
        assert counts[0] == cfg.n_sms - 1
        assert counts[1] == 1

    def test_bad_quantum_rejected(self):
        with pytest.raises(ValueError):
            TimeSlicePolicy(GPUConfig(), quantum_intervals=0)

    def test_both_apps_progress_across_quanta(self):
        cfg, gpu = make_gpu()
        pol = TimeSlicePolicy(cfg, quantum_intervals=1)
        pol.attach(gpu)
        gpu.run(60_000)
        assert all(p.instructions > 0 for p in gpu.progress)


class TestLeftoverPartition:
    def spec(self, **over):
        over.setdefault("compute_per_mem", 10)
        over.setdefault("warps_per_block", 4)
        return KernelSpec("k", **over)

    def test_big_grid_monopolizes(self):
        cfg = GPUConfig(n_sms=8)
        parts = leftover_partition(cfg, [self.spec(), self.spec()])
        assert parts == [7, 1]

    def test_three_kernels(self):
        cfg = GPUConfig(n_sms=8)
        parts = leftover_partition(cfg, [self.spec()] * 3)
        assert parts == [6, 1, 1]

    def test_small_grid_leaves_room(self):
        cfg = GPUConfig(n_sms=8)
        small = self.spec(blocks_total=4)
        parts = leftover_partition(cfg, [small, self.spec()], restart=False)
        # 4 blocks fit on one SM (8-block cap): genuine leftovers remain.
        assert parts[0] == 1
        assert parts[1] == 7

    def test_occupancy_limit_respected(self):
        cfg = GPUConfig(n_sms=8)
        limited = self.spec(blocks_total=6, max_resident_blocks=2)
        parts = leftover_partition(cfg, [limited, self.spec()], restart=False)
        assert parts[0] == 3  # ceil(6 / 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            leftover_partition(GPUConfig(), [])

    def test_partition_is_runnable(self):
        cfg = GPUConfig(n_sms=8, interval_cycles=4_000)
        specs = [self.spec(), self.spec()]
        gpu = GPU(cfg, specs, sm_partition=leftover_partition(cfg, specs))
        gpu.run(10_000)
        assert all(p.instructions > 0 for p in gpu.progress)


class TestMotivationComparison:
    @pytest.mark.slow
    def test_even_spatial_beats_leftover_on_fairness(self):
        """The paper's §2.2 claim: LEFTOVER nearly serializes; even spatial
        sharing is fairer to the late-launched application."""
        from repro.harness import run_workload, scaled_config
        from repro.workloads import SUITE

        cfg = scaled_config()
        even = run_workload(["SD", "VA"], config=cfg, shared_cycles=120_000,
                            models=())
        specs = [SUITE["SD"], SUITE["VA"]]
        lo = run_workload(
            ["SD", "VA"], config=cfg, shared_cycles=120_000, models=(),
            sm_partition=leftover_partition(cfg, specs),
        )
        # VA (launched second, one SM) starves under LEFTOVER: its slowdown
        # explodes relative to the even spatial split — the responsiveness
        # problem §2.2 describes.
        assert lo.actual_slowdowns[1] > even.actual_slowdowns[1] * 1.5
        assert lo.actual_slowdowns[1] > 3.0
