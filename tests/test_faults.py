"""Fault-injection subsystem: plan semantics, injector determinism,
zero-intensity bit-identity (golden-enforced), and the degradation
headline (DASE error non-decreasing in counter-noise σ).

The property layer (hypothesis) works on synthetic interval records so it
can sweep thousands of cases; the golden/monotone layer runs the real
simulator and is marked ``slow`` like the rest of the end-to-end suite.
"""

import json
import math
import pathlib

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.faults import (  # noqa: E402
    DROP_SKIP,
    DROP_STALE,
    AppFaults,
    FaultInjector,
    FaultPlan,
    noise_plan,
    resolve_injector,
)
from repro.harness import run_workload, scaled_config  # noqa: E402
from repro.sim.stats import (  # noqa: E402
    AppMemCounters,
    AppSMCounters,
    IntervalRecord,
)

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "golden_pairs.json"
SHARED_CYCLES = 40_000  # matches tests/test_golden.py
CFG = scaled_config()


# ------------------------------------------------------------ synthetic data


def make_record(app: int, index: int, scale: int = 1) -> IntervalRecord:
    """A plausible, distinct interval record (values keyed to app/index)."""
    base = 100 * (app + 1) + 10 * index
    mem = AppMemCounters(
        requests_served=base * scale,
        time_request=7 * base * scale,
        erb_miss=base // 3,
        demanded_bank_integral=1.5 * base,
        executing_bank_integral=0.9 * base,
        outstanding_time=0.6 * base,
    )
    sm = AppSMCounters(
        instructions=50 * base,
        busy_time=4.0 * base,
        stall_time=2.0 * base,
        sm_time=6.0 * base,
    )
    return IntervalRecord(
        app=app, start=index * 1000, end=(index + 1) * 1000,
        mem=mem, sm=sm, ellc_miss=0.25 * base, sm_count=6, sm_total=12,
        tb_running=8, tb_unfinished=20,
    )


def make_records(n_apps: int, index: int) -> list:
    return [make_record(a, index) for a in range(n_apps)]


# ----------------------------------------------------------------- the plan


class TestPlan:
    def test_defaults_are_null(self):
        assert AppFaults().is_null
        assert FaultPlan().is_null
        assert noise_plan(0.0).is_null
        assert not noise_plan(0.1).is_null

    def test_quantize_one_is_null(self):
        assert AppFaults(quantize=1).is_null
        assert not AppFaults(quantize=2).is_null

    def test_validation(self):
        with pytest.raises(ValueError):
            AppFaults(noise_sigma=-0.1)
        with pytest.raises(ValueError):
            AppFaults(drop_prob=1.5)
        with pytest.raises(ValueError):
            AppFaults(drop_mode="maybe")
        with pytest.raises(ValueError):
            AppFaults(delay=-1)
        with pytest.raises(ValueError):
            AppFaults(atd_rate=0.0)
        with pytest.raises(ValueError):
            AppFaults(atd_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(per_app=((0, AppFaults()), (0, AppFaults())))

    def test_for_app_override(self):
        hot = AppFaults(noise_sigma=0.5)
        plan = FaultPlan(per_app=((1, hot),))
        assert plan.for_app(0).is_null
        assert plan.for_app(1) is hot
        assert not plan.is_null

    def test_plan_is_hashable_and_picklable(self):
        import pickle

        plan = FaultPlan(seed=3, per_app=((0, AppFaults(noise_sigma=0.1)),))
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))

    def test_resolve_injector(self):
        assert resolve_injector(None, 2) is None
        assert resolve_injector(FaultPlan(), 2) is None  # null → no injector
        inj = resolve_injector(noise_plan(0.1), 2)
        assert isinstance(inj, FaultInjector)
        assert resolve_injector(inj, 2) is inj
        with pytest.raises(TypeError):
            resolve_injector("noise", 2)


# ------------------------------------------------------------- the injector


class TestInjectorDelivery:
    def test_memoized_and_ordered(self):
        inj = FaultInjector(noise_plan(0.2, seed=1))
        recs = make_records(2, 0)
        view = inj.deliver(0, recs)
        assert inj.deliver(0, recs) is view
        with pytest.raises(RuntimeError, match="out of order"):
            inj.deliver(5, make_records(2, 5))

    def test_null_app_passes_through_untouched(self):
        plan = FaultPlan(per_app=((1, AppFaults(noise_sigma=0.3)),))
        inj = FaultInjector(plan)
        recs = make_records(2, 0)
        view = inj.deliver(0, recs)
        assert view.records[0] is recs[0]  # identity, not a copy
        assert view.records[1] is not recs[1]
        assert view.faulted == {1}
        assert view.records[1].extra["fault"] == ["noise"]

    def test_drop_skip_semantics(self):
        plan = FaultPlan(default=AppFaults(drop_prob=1.0, drop_mode=DROP_SKIP))
        inj = FaultInjector(plan)
        for t in range(3):
            view = inj.deliver(t, make_records(1, t))
            assert view.skipped == {0}
            assert any("drop-skip" in ev["kinds"] for ev in view.events)

    def test_drop_stale_redelivers_last_record(self):
        # drop_prob=1 never delivers, so stale degenerates to skip; use the
        # seeded draws to find an interval that drops after one that didn't.
        plan = FaultPlan(
            seed=5, default=AppFaults(drop_prob=0.5, drop_mode=DROP_STALE)
        )
        inj = FaultInjector(plan)
        seen_ids: set[int] = set()
        stale_hits = 0
        for t in range(40):
            view = inj.deliver(t, make_records(1, t))
            if 0 in view.skipped:
                continue
            rec = view.records[0]
            ev_kinds = [k for ev in view.events for k in ev["kinds"]]
            if "drop-stale" in ev_kinds:
                # a stale delivery re-issues an earlier delivered object
                assert id(rec) in seen_ids
                stale_hits += 1
            seen_ids.add(id(rec))
        assert stale_hits > 0  # seed 5 produces both outcomes in 40 draws

    def test_stale_with_no_predecessor_skips(self):
        plan = FaultPlan(default=AppFaults(drop_prob=1.0, drop_mode=DROP_STALE))
        inj = FaultInjector(plan)
        view = inj.deliver(0, make_records(1, 0))
        assert view.skipped == {0}

    def test_delay_shifts_and_warms_up(self):
        plan = FaultPlan(default=AppFaults(delay=2))
        inj = FaultInjector(plan)
        raws = [make_records(1, t) for t in range(5)]
        views = [inj.deliver(t, raws[t]) for t in range(5)]
        assert views[0].skipped == {0} and views[1].skipped == {0}
        # With every other knob at identity the delayed record is the raw
        # record of interval t − 2, the very object.
        for t in (2, 3, 4):
            assert views[t].records[0] is raws[t - 2][0]

    def test_quantize_rounds_int_counters(self):
        plan = FaultPlan(default=AppFaults(quantize=10))
        inj = FaultInjector(plan)
        rec = inj.deliver(0, make_records(1, 0)).records[0]
        for name in ("requests_served", "time_request", "erb_miss"):
            assert getattr(rec.mem, name) % 10 == 0

    def test_atd_rate_coarsens_ellc(self):
        plan = FaultPlan(default=AppFaults(atd_rate=0.5))
        inj = FaultInjector(plan)
        rec = inj.deliver(0, make_records(1, 0)).records[0]
        # re-quantized to the 1/rate grid
        assert (rec.ellc_miss * 0.5) == pytest.approx(
            round(rec.ellc_miss * 0.5), abs=1e-9
        )
        assert "atd-rate" in rec.extra["fault"]

    def test_events_mirror_into_audit(self):
        from repro.obs.audit import AuditLog

        audit = AuditLog()
        inj = FaultInjector(noise_plan(0.2, seed=1), audit=audit)
        inj.deliver(0, make_records(2, 0))
        assert audit.fault_events == inj.events
        assert len(audit.fault_events) == 2
        assert audit.summary()["fault_kinds"] == {"noise": 2}


class TestInjectorDeterminism:
    @given(sigma=st.floats(min_value=0.001, max_value=1.0,
                           allow_nan=False),
           seed=st.integers(min_value=0, max_value=2**31),
           n_apps=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_delivery(self, sigma, seed, n_apps):
        """Two injectors with the same plan produce field-identical views
        — the inline-vs-pooled determinism contract at the unit level."""
        a = FaultInjector(noise_plan(sigma, seed=seed))
        b = FaultInjector(noise_plan(sigma, seed=seed))
        for t in range(3):
            ra = a.deliver(t, make_records(n_apps, t)).records
            rb = b.deliver(t, make_records(n_apps, t)).records
            for x, y in zip(ra, rb):
                assert x.mem == y.mem and x.sm == y.sm
                assert x.ellc_miss == y.ellc_miss
        assert a.events == b.events

    @given(sigma=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_perturbed_counters_stay_valid(self, sigma, seed):
        """Noise never produces negative or non-integer counters."""
        inj = FaultInjector(noise_plan(sigma, seed=seed))
        rec = inj.deliver(0, make_records(1, 0)).records[0]
        for name in ("requests_served", "time_request", "erb_miss"):
            v = getattr(rec.mem, name)
            assert isinstance(v, int) and v >= 0
        for name in ("demanded_bank_integral", "executing_bank_integral",
                     "outstanding_time"):
            assert getattr(rec.mem, name) >= 0.0
        assert rec.sm.busy_time >= 0.0 and rec.sm.stall_time >= 0.0
        assert rec.ellc_miss >= 0.0

    def test_common_random_numbers_across_sigma(self):
        """The draw schedule is fixed: scaling σ scales every log-ratio by
        the same factor, so curves over σ deform one realization."""
        lo = FaultInjector(noise_plan(0.1, seed=9))
        hi = FaultInjector(noise_plan(0.2, seed=9))
        raw = make_record(0, 0)
        rl = lo.deliver(0, [raw]).records[0]
        rh = hi.deliver(0, [raw]).records[0]
        for name in ("demanded_bank_integral", "outstanding_time"):
            g_lo = math.log(getattr(rl.mem, name) / getattr(raw.mem, name))
            g_hi = math.log(getattr(rh.mem, name) / getattr(raw.mem, name))
            assert g_hi == pytest.approx(2.0 * g_lo, rel=1e-9)

    def test_seed_changes_realization(self):
        a = FaultInjector(noise_plan(0.3, seed=1))
        b = FaultInjector(noise_plan(0.3, seed=2))
        ra = a.deliver(0, make_records(1, 0)).records[0]
        rb = b.deliver(0, make_records(1, 0)).records[0]
        assert ra.mem != rb.mem


# --------------------------------------------------- golden zero-intensity


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _measure(combo, faults):
    res = run_workload(list(combo), config=CFG,
                       shared_cycles=SHARED_CYCLES, models=(), faults=faults)
    return {
        "instructions": res.instructions,
        "alone_cycles": res.alone_cycles,
        "slowdowns": res.actual_slowdowns,
        "unfairness": res.actual_unfairness,
        "hspeedup": res.actual_hspeedup,
    }


def _assert_matches(got, expected):
    assert got["instructions"] == expected["instructions"]
    assert got["alone_cycles"] == expected["alone_cycles"]
    assert got["slowdowns"] == pytest.approx(expected["slowdowns"], rel=1e-9)
    assert got["unfairness"] == pytest.approx(expected["unfairness"], rel=1e-9)
    assert got["hspeedup"] == pytest.approx(expected["hspeedup"], rel=1e-9)


@pytest.mark.slow
class TestZeroIntensityGolden:
    """A null FaultPlan must be bit-identical to no plan at all — checked
    against the same golden fixtures the unfaulted runs are held to."""

    def test_null_plan_matches_golden_pair(self, golden):
        got = _measure(("SD", "SB"), faults=FaultPlan())
        _assert_matches(got, golden["pairs"]["SD+SB"])

    def test_null_plan_matches_golden_quad(self, golden):
        got = _measure(("SD", "NN", "CS", "SB"), faults=FaultPlan())
        _assert_matches(got, golden["quads"]["SD+NN+CS+SB"])

    def test_null_plan_full_result_identical(self):
        """Stronger than the golden scalars: the whole result payload,
        estimator histories included, is identical with and without the
        null plan."""
        kw = dict(config=CFG, shared_cycles=SHARED_CYCLES, models=("DASE",))
        plain = run_workload(["SD", "SB"], **kw)
        nulled = run_workload(["SD", "SB"], faults=FaultPlan(), **kw)
        assert plain.to_dict() == nulled.to_dict()

    def test_null_plan_matches_golden_pooled(self, golden):
        from repro.harness.parallel import run_workloads

        outcomes = run_workloads(
            [["SD", "SB"], ["NN", "VA"]], jobs=2, config=CFG,
            shared_cycles=SHARED_CYCLES, models=(), faults=FaultPlan(),
        )
        for combo, outcome in zip((("SD", "SB"), ("NN", "VA")), outcomes):
            res = outcome.unwrap()
            got = {
                "instructions": res.instructions,
                "alone_cycles": res.alone_cycles,
                "slowdowns": res.actual_slowdowns,
                "unfairness": res.actual_unfairness,
                "hspeedup": res.actual_hspeedup,
            }
            _assert_matches(got, golden["pairs"]["+".join(combo)])


@pytest.mark.slow
class TestEndToEndDeterminism:
    def test_inline_matches_pooled_under_faults(self):
        """Same plan, same seed ⇒ the same perturbation sequence whether
        the run executes in-process or in a pool worker."""
        from repro.harness.parallel import run_workloads

        plan = noise_plan(0.2, seed=11)
        inline = run_workload(["SD", "SB"], config=CFG,
                              shared_cycles=SHARED_CYCLES,
                              models=("DASE",), faults=plan)
        pooled = run_workloads(
            [["SD", "SB"]], jobs=2, config=CFG,
            shared_cycles=SHARED_CYCLES, models=("DASE",), faults=plan,
        )[0].unwrap()
        assert inline.to_dict() == pooled.to_dict()

    def test_noise_perturbs_estimates_not_execution(self):
        """Without a policy the fault layer is read-only: measured
        slowdowns are untouched, only the estimates move."""
        kw = dict(config=CFG, shared_cycles=SHARED_CYCLES, models=("DASE",))
        plain = run_workload(["SD", "SB"], **kw)
        noisy = run_workload(["SD", "SB"], faults=noise_plan(0.4, seed=3),
                             **kw)
        assert noisy.actual_slowdowns == plain.actual_slowdowns
        assert noisy.instructions == plain.instructions
        assert noisy.estimates["DASE"] != plain.estimates["DASE"]


@pytest.mark.slow
def test_dase_error_monotone_in_sigma():
    """The degradation headline: mean DASE error on the SD+SB golden pair
    is non-decreasing as counter-noise σ steps up.  Uses the default
    (120K-cycle) shared window — at much shorter windows noise can cancel
    estimator bias and the curve is not monotone."""
    errors = []
    for sigma in (0.0, 0.05, 0.1, 0.2, 0.4):
        res = run_workload(
            ["SD", "SB"], config=CFG, models=("DASE",),
            faults=noise_plan(sigma, seed=7) if sigma else None,
        )
        errors.append(res.mean_error("DASE"))
    assert errors == sorted(errors), f"not monotone: {errors}"
