"""Tests for GPUConfig — including that defaults match paper Table 2."""

import pytest

from repro.config import BASELINE, CacheConfig, DRAMTimings, GPUConfig


class TestTable2Defaults:
    """The baseline must be the paper's GTX480-like configuration."""

    def test_sm_count(self):
        assert BASELINE.n_sms == 16

    def test_max_warps(self):
        assert BASELINE.max_warps_per_sm == 48

    def test_core_clock(self):
        assert BASELINE.core_clock_mhz == 1400.0

    def test_memory_controllers(self):
        assert BASELINE.n_partitions == 6

    def test_banks_per_mc(self):
        assert BASELINE.n_banks == 16

    def test_dram_clock(self):
        assert BASELINE.dram_clock_mhz == 924.0

    def test_trp_trcd(self):
        assert BASELINE.dram.tRP == 12
        assert BASELINE.dram.tRCD == 12

    def test_l2_total_768kb(self):
        assert BASELINE.l2.size_bytes * BASELINE.n_partitions == 768 * 1024

    def test_line_size_128b(self):
        assert BASELINE.l2.line_bytes == 128

    def test_interval_50k(self):
        assert BASELINE.interval_cycles == 50_000

    def test_atd_8_sampled_sets(self):
        assert BASELINE.atd_sample_sets == 8

    def test_reqmax_factor(self):
        assert BASELINE.reqmax_factor == 0.6


class TestDerivedQuantities:
    def test_dram_clock_ratio(self):
        assert BASELINE.dram_clock_ratio == pytest.approx(1400 / 924)

    def test_dram_cycles_to_core_rounds_up(self):
        assert BASELINE.dram_cycles_to_core(1) == 2  # 1.51 → 2

    def test_time_per_request_is_burst_in_core_cycles(self):
        assert BASELINE.time_per_request == BASELINE.dram_cycles_to_core(
            BASELINE.dram.tBurst
        )

    def test_lines_per_row(self):
        assert BASELINE.lines_per_row == 2048 // 128

    def test_row_miss_penalty(self):
        assert DRAMTimings().row_miss_penalty == 24

    def test_cache_sets_power_of_two(self):
        assert BASELINE.l2.n_sets & (BASELINE.l2.n_sets - 1) == 0

    def test_with_sms_copy(self):
        c8 = BASELINE.with_sms(8)
        assert c8.n_sms == 8
        assert BASELINE.n_sms == 16  # original untouched
        assert c8.n_partitions == BASELINE.n_partitions


class TestValidation:
    def test_zero_sms_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(n_sms=0)

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(n_partitions=0)

    def test_non_power_of_two_banks_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(n_banks=12)

    def test_row_not_multiple_of_line_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(row_bytes=2000)

    def test_bad_reqmax_factor_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(reqmax_factor=0.0)
        with pytest.raises(ValueError):
            GPUConfig(reqmax_factor=1.5)

    def test_bad_cache_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=128, assoc=8)

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            BASELINE.n_sms = 4  # type: ignore[misc]
