"""Diagnostic-breakdown invariants of the DASE estimator (pure unit)."""

import pytest

from repro.config import GPUConfig
from repro.core.dase import DASE, DASEBreakdown
from repro.sim.stats import AppMemCounters, AppSMCounters, IntervalRecord

CFG = GPUConfig()
CYCLES = 50_000


def record(**kw):
    defaults = dict(
        app=0, requests=2000, ellc=0.0, erb=0, alpha=0.3, sm_count=8,
        demanded=5.0 * CYCLES, executing=4.0 * CYCLES, outstanding=0.5 * CYCLES,
    )
    defaults.update(kw)
    d = defaults
    mem = AppMemCounters(
        requests_served=d["requests"],
        time_request=60 * d["requests"],
        erb_miss=d["erb"],
        demanded_bank_integral=d["demanded"],
        executing_bank_integral=d["executing"],
        outstanding_time=d["outstanding"],
    )
    sm = AppSMCounters(
        instructions=10_000,
        busy_time=(1 - d["alpha"]) * CYCLES * d["sm_count"],
        stall_time=d["alpha"] * CYCLES * d["sm_count"],
        sm_time=CYCLES * d["sm_count"],
    )
    return IntervalRecord(
        app=d["app"], start=0, end=CYCLES, mem=mem, sm=sm,
        ellc_miss=d["ellc"], sm_count=d["sm_count"], sm_total=16,
        tb_running=8, tb_unfinished=10**6,
    )


def breakdown_for(rec, records=None, **dase_kw) -> DASEBreakdown:
    model = DASE(CFG, **dase_kw)
    model.estimate_interval(records or [rec])
    return model.breakdowns[-1][rec.app]


class TestBreakdownInvariants:
    def test_interference_never_exceeds_stall_time(self):
        rec = record(alpha=0.25, demanded=80.0 * CYCLES, executing=1.0 * CYCLES,
                     outstanding=CYCLES, erb=10**6, ellc=10**6)
        bd = breakdown_for(rec)
        assert bd.time_interference <= 0.25 * CYCLES + 1e-6

    def test_terms_nonnegative(self):
        bd = breakdown_for(record())
        for v in (bd.time_bank, bd.time_rowbuf, bd.time_cache,
                  bd.time_interference):
            assert v >= 0.0

    def test_blp_values_recorded(self):
        rec = record(demanded=6.0 * CYCLES, executing=3.0 * CYCLES,
                     outstanding=CYCLES)
        bd = breakdown_for(rec)
        assert bd.blp == pytest.approx(6.0)
        assert bd.blp_access == pytest.approx(3.0)

    def test_slowdowns_consistent(self):
        bd = breakdown_for(record())
        assert bd.slowdown_all >= 1.0
        assert bd.slowdown_assigned >= 1.0
        # All-SM estimate never exceeds the plain SM-ratio extrapolation.
        assert bd.slowdown_all <= bd.slowdown_assigned * 2 + 1e-9

    def test_blp_divisor_ablation_increases_interference(self):
        rec = record(alpha=0.9, demanded=6.0 * CYCLES, executing=3.0 * CYCLES,
                     outstanding=CYCLES)
        with_div = breakdown_for(rec, use_blp_divisor=True)
        without = breakdown_for(rec, use_blp_divisor=False)
        assert without.time_interference >= with_div.time_interference

    def test_mbb_breakdown_has_no_time_terms(self):
        from repro.core.classify import request_max

        rmax = request_max(CYCLES, CFG)
        rec = record(requests=int(rmax * 1.1), alpha=0.9)
        bd = breakdown_for(rec)
        assert bd.mbb
        assert bd.time_bank == 0.0
        assert bd.slowdown_all == bd.slowdown_assigned

    def test_one_row_per_interval_per_app(self):
        model = DASE(CFG)
        recs = [record(app=0), record(app=1)]
        model.estimate_interval(recs)
        model.estimate_interval(recs)
        assert len(model.breakdowns) == 2
        assert len(model.breakdowns[0]) == 2
