"""Structural tests for the trace exporters: Chrome trace_event JSON,
events CSV, the HTML run report, and the inspection tooling."""

import csv
import io
import json
import pathlib

import pytest

from repro.config import GPUConfig
from repro.harness import run_workload
from repro.obs import (
    Observation,
    chrome_trace_events,
    events_csv,
    export_chrome_trace,
    export_events_csv,
    export_html_report,
    render_html_report,
    to_chrome_trace,
    trace_summary,
)
from repro.obs.export import CHROME_PHASES, CSV_HEADER, bank_heat
from repro.obs.inspect import (
    RUN_SCHEMA,
    inspect_path,
    summarize_chrome,
    summarize_run,
)

APPS = ["SD", "SB"]


@pytest.fixture(scope="module")
def recording():
    """One traced SD+SB run shared by every exporter test."""
    obs = Observation()
    res = run_workload(
        APPS, config=GPUConfig(interval_cycles=5_000),
        shared_cycles=15_000, models=("DASE", "MISE", "ASM"), trace=obs,
    )
    return obs, res


# ------------------------------------------------------------- chrome trace


class TestChromeExport:
    def test_structure(self, recording):
        obs, _ = recording
        events = chrome_trace_events(obs.tracer)
        assert events, "no events exported"
        for ev in events:
            assert set(ev) >= {"name", "ph", "ts", "pid", "tid"}
            assert ev["ph"] in CHROME_PHASES
            assert isinstance(ev["ts"], float)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
            if ev["ph"] == "C":
                assert ev["args"], "counter event without a value"

    def test_metadata_first_then_sorted_by_ts(self, recording):
        obs, _ = recording
        events = chrome_trace_events(obs.tracer)
        phases = [ev["ph"] for ev in events]
        n_meta = phases.count("M")
        assert n_meta > 0
        assert all(ph == "M" for ph in phases[:n_meta])
        ts = [ev["ts"] for ev in events[n_meta:]]
        assert ts == sorted(ts)

    def test_process_names_cover_every_pid(self, recording):
        obs, _ = recording
        events = chrome_trace_events(obs.tracer)
        named = {
            ev["pid"] for ev in events
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        used = {ev["pid"] for ev in events if ev["ph"] != "M"}
        assert used <= named
        names = {
            ev["pid"]: ev["args"]["name"] for ev in events
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert names[0] == "app0 (SD)"
        assert names[1] == "app1 (SB)"

    def test_payload_and_file_round_trip(self, recording, tmp_path):
        obs, _ = recording
        payload = to_chrome_trace(obs.tracer)
        assert payload["otherData"]["events_emitted"] == obs.tracer.n_emitted
        path = tmp_path / "trace.json"
        export_chrome_trace(obs.tracer, path)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"] == json.loads(
            json.dumps(payload["traceEvents"])
        )
        assert loaded["otherData"]["topology"]["app_names"] == APPS


# ---------------------------------------------------------------------- CSV


class TestCsvExport:
    def test_round_trips_through_csv_reader(self, recording, tmp_path):
        obs, _ = recording
        path = tmp_path / "events.csv"
        export_events_csv(obs.tracer, path)
        with path.open(newline="") as fh:
            rows = list(csv.reader(fh))
        assert tuple(rows[0]) == CSV_HEADER
        assert len(rows) - 1 == len(obs.tracer)
        for row in rows[1:]:
            assert len(row) == len(CSV_HEADER)
            int(row[0])  # ts
            assert row[1] in ("i", "X", "C")
            if row[6]:
                assert isinstance(json.loads(row[6]), dict)

    def test_sorted_by_timestamp(self, recording):
        obs, _ = recording
        rows = list(csv.reader(io.StringIO(events_csv(obs.tracer))))[1:]
        ts = [int(r[0]) for r in rows]
        assert ts == sorted(ts)


# --------------------------------------------------------------- HTML report


class TestHtmlReport:
    def test_report_complete_and_placeholder_free(self, recording, tmp_path):
        obs, res = recording
        html = render_html_report(
            result=res, telemetry=obs.telemetry, tracer=obs.tracer,
            registry=obs.registry, title="SD+SB",
        )
        assert "${" not in html, "unresolved template placeholder"
        for needle in ("SD", "SB", "DASE", "MISE", "ASM", "DRAM bank heat",
                       "<svg", "</html>"):
            assert needle in html
        path = tmp_path / "report.html"
        export_html_report(
            path, result=res, telemetry=obs.telemetry, tracer=obs.tracer,
            registry=obs.registry, title="SD+SB",
        )
        assert path.read_text() == html

    def test_report_renders_without_result(self, recording):
        obs, _ = recording
        html = render_html_report(tracer=obs.tracer, title="bare")
        assert "${" not in html
        assert "Recorded events" in html


# ------------------------------------------------------- summaries / inspect


class TestSummaries:
    def test_trace_summary(self, recording):
        obs, _ = recording
        s = trace_summary(obs.tracer)
        json.dumps(s)  # JSON-safe
        assert s["events_retained"] == len(obs.tracer)
        assert s["events_emitted"] == obs.tracer.n_emitted
        assert s["span_cycles"][0] <= s["span_cycles"][1]
        assert s["by_name"]["dram.service"] > 0
        assert s["engine"]["events_dispatched"] > 0

    def test_bank_heat(self, recording):
        obs, _ = recording
        heat = bank_heat(obs.tracer)
        assert heat
        cfg = GPUConfig()
        for (part, bank), count in heat.items():
            assert 0 <= part < cfg.n_partitions
            assert 0 <= bank < cfg.n_banks
            assert count > 0
        assert sum(heat.values()) == obs.tracer.counts_by_name()[
            "dram.service"
        ]

    def _manifest(self, recording):
        obs, res = recording
        return {
            "schema": RUN_SCHEMA,
            "workload": res.to_dict(),
            "trace": trace_summary(obs.tracer),
            "metrics": obs.registry.snapshot(),
            "files": {"chrome": "trace.json"},
        }

    def test_summarize_run(self, recording):
        text = summarize_run(self._manifest(recording))
        assert "workload: SD+SB" in text
        assert "DASE" in text and "actual" in text
        assert "events emitted" in text
        assert "chrome=trace.json" in text

    def test_summarize_chrome(self, recording):
        obs, _ = recording
        text = summarize_chrome(to_chrome_trace(obs.tracer))
        assert "chrome trace:" in text
        assert "dram.service" in text

    def test_inspect_path_dispatch(self, recording, tmp_path):
        obs, _ = recording
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "run.json").write_text(
            json.dumps(self._manifest(recording))
        )
        # Directory and manifest file resolve to the run summary...
        assert "workload: SD+SB" in inspect_path(str(run_dir))
        assert "workload: SD+SB" in inspect_path(str(run_dir / "run.json"))
        # ...a raw Chrome trace to the trace summary.
        trace_path = tmp_path / "trace.json"
        export_chrome_trace(obs.tracer, trace_path)
        assert "chrome trace:" in inspect_path(str(trace_path))

    def test_inspect_path_rejects_unrecognized(self, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="no schema tag"):
            inspect_path(str(junk))
        tagged = tmp_path / "tagged.json"
        tagged.write_text('{"schema": "acme.mystery/9"}')
        with pytest.raises(ValueError, match="unrecognized schema"):
            inspect_path(str(tagged))
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="no run.json"):
            inspect_path(str(empty))
