"""Small-scale tests for the experiment drivers (full scale runs in
benchmarks/; here we verify plumbing and result shapes quickly)."""

import pytest

from repro.harness import scaled_config
from repro.harness.experiments import (
    DEFAULT_PAIRS,
    estimation_accuracy,
    fig2_unfairness,
    fig3_service_rate,
    fig4_mbb_requests,
    fig7_error_distribution,
    fig9_dase_fair,
    pair_list,
)

CFG = scaled_config()
SMALL = 60_000


class TestPairList:
    def test_default_subset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert pair_list() == DEFAULT_PAIRS

    def test_full_scale_all_pairs(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert len(pair_list()) == 105

    def test_limit(self):
        assert len(pair_list(3)) == 3

    def test_subset_apps_exist(self):
        from repro.workloads import APP_NAMES

        for a, b in DEFAULT_PAIRS:
            assert a in APP_NAMES and b in APP_NAMES


@pytest.mark.slow
class TestDrivers:
    def test_fig2_shapes(self):
        res = fig2_unfairness(
            combos=[("SD", "SB")], config=CFG, shared_cycles=SMALL
        )
        assert set(res.unfairness) == {"SD+SB"}
        assert res.unfairness["SD+SB"] >= 1.0
        bd = res.breakdown["SD+SB"]
        assert set(bd) == {"SD", "SB", "wasted", "idle"}
        assert res.sd_alone_bw > 0.2

    def test_fig3_shapes(self):
        res = fig3_service_rate(config=CFG, cycles=20_000)
        assert len(res.points) == 7
        assert -1.0 <= res.correlation <= 1.0

    def test_fig4_shapes(self):
        res = fig4_mbb_requests(partners=["QR"], config=CFG, cycles=40_000)
        assert res.alone_rate > 0
        assert set(res.shared_rates) == {"QR"}

    def test_accuracy_driver(self):
        res = estimation_accuracy(
            [("QR", "CT")], config=CFG, shared_cycles=SMALL, models=("DASE",)
        )
        assert "QR+CT" in res.per_workload
        assert res.mean_error("DASE") < 0.3
        assert len(res.results) == 1
        # sample accounting: pooled errors + skipped apps = apps swept
        assert res.sample_count("DASE") + res.skipped["DASE"] == 2
        assert res.failures == {}

    def test_accuracy_driver_captures_failures(self):
        res = estimation_accuracy(
            [("QR", "NOPE"), ("QR", "CT")], config=CFG,
            shared_cycles=SMALL, models=("DASE",),
        )
        assert "QR+NOPE" in res.failures
        assert "KeyError" in res.failures["QR+NOPE"]
        # the healthy workload still produced numbers
        assert "QR+CT" in res.per_workload
        assert len(res.results) == 1

    def test_accuracy_driver_parallel_matches_serial(self, tmp_path):
        serial = estimation_accuracy(
            [("QR", "CT"), ("NN", "VA")], config=CFG,
            shared_cycles=SMALL, models=("DASE",),
        )
        parallel = estimation_accuracy(
            [("QR", "CT"), ("NN", "VA")], config=CFG,
            shared_cycles=SMALL, models=("DASE",),
            jobs=2, cache_dir=str(tmp_path),
        )
        assert parallel.per_workload == serial.per_workload
        assert parallel.errors == serial.errors

    def test_fig7_distribution_shape(self):
        res = estimation_accuracy(
            [("QR", "CT")], config=CFG, shared_cycles=SMALL, models=("DASE",)
        )
        dists = fig7_error_distribution(res)
        assert set(dists) == {"DASE"}
        assert sum(dists["DASE"].values()) == pytest.approx(1.0)

    def test_fig9_driver(self):
        res = fig9_dase_fair(
            pairs=[("SD", "SB")], config=CFG, shared_cycles=SMALL
        )
        key = "SD+SB"
        assert res.workloads == [key]
        assert res.unfairness_even[key] >= 1.0
        assert res.unfairness_fair[key] >= 1.0
        assert 0 < res.hspeedup_even[key] <= 1.0
