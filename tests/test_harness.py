"""Tests for the matched-instruction evaluation harness."""

import pytest

from repro.config import GPUConfig
from repro.harness import run_workload, scaled_config
from repro.harness.runner import WorkloadResult, full_scale
from repro.metrics import estimation_error
from repro.sim.kernel import KernelSpec


def small_config():
    return scaled_config()


@pytest.fixture(scope="module")
def sd_sa_result():
    return run_workload(["SD", "SA"], config=small_config(), shared_cycles=80_000)


@pytest.mark.slow
class TestRunWorkload:
    def test_names_resolved(self, sd_sa_result):
        assert sd_sa_result.names == ["SD", "SA"]

    def test_default_even_partition(self, sd_sa_result):
        assert sd_sa_result.sm_partition == [8, 8]

    def test_actual_slowdowns_reasonable(self, sd_sa_result):
        for s in sd_sa_result.actual_slowdowns:
            assert 1.0 <= s <= 20.0

    def test_alone_replay_faster_than_shared(self, sd_sa_result):
        """Per instruction, alone on all SMs is faster than shared on half."""
        for c in sd_sa_result.alone_cycles:
            assert c < sd_sa_result.shared_cycles

    def test_estimates_present_for_all_models(self, sd_sa_result):
        for model in ("DASE", "MISE", "ASM"):
            assert model in sd_sa_result.estimates
            assert len(sd_sa_result.estimates[model]) == 2

    def test_errors_match_manual_computation(self, sd_sa_result):
        errs = sd_sa_result.errors("DASE")
        manual = [
            estimation_error(e, a)
            for e, a in zip(
                sd_sa_result.estimates["DASE"], sd_sa_result.actual_slowdowns
            )
            if e is not None
        ]
        assert errs == manual

    def test_unfairness_and_hspeedup(self, sd_sa_result):
        assert sd_sa_result.actual_unfairness >= 1.0
        assert 0.0 < sd_sa_result.actual_hspeedup <= 1.0

    def test_bandwidth_reported(self, sd_sa_result):
        assert set(sd_sa_result.bandwidth) == {"SD", "SA", "total"}
        assert sd_sa_result.bandwidth["total"] == pytest.approx(
            sd_sa_result.bandwidth["SD"] + sd_sa_result.bandwidth["SA"], abs=1e-9
        )


@pytest.mark.slow
class TestHarnessOptions:
    def test_custom_partition(self):
        res = run_workload(
            ["QR", "CT"], config=small_config(), shared_cycles=40_000,
            sm_partition=[4, 12], models=("DASE",),
        )
        assert res.sm_partition == [4, 12]

    def test_kernel_specs_accepted_directly(self):
        spec = KernelSpec("custom", compute_per_mem=20, warps_per_block=4)
        res = run_workload(
            [spec, "QR"], config=small_config(), shared_cycles=40_000,
            models=("DASE",),
        )
        assert res.names == ["custom", "QR"]

    def test_no_models(self):
        res = run_workload(
            ["QR", "CT"], config=small_config(), shared_cycles=40_000, models=()
        )
        assert res.estimates == {}
        assert res.actual_slowdowns

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            run_workload(["QR", "CT"], models=("BOGUS",))

    def test_mean_error_without_estimates_raises(self):
        res = run_workload(
            ["QR", "CT"], config=small_config(), shared_cycles=40_000, models=()
        )
        with pytest.raises(KeyError):
            res.mean_error("DASE")


class TestSkippedEstimates:
    """None estimates must be counted, not silently averaged away."""

    @staticmethod
    def _result(estimates):
        return WorkloadResult(
            names=["A", "B"], sm_partition=[8, 8], shared_cycles=1000,
            instructions=[10, 10], alone_cycles=[500, 500],
            actual_slowdowns=[2.0, 2.0], estimates=estimates,
        )

    def test_skipped_counts_nones(self):
        res = self._result({"DASE": [2.0, None], "MISE": [None, None]})
        assert res.skipped("DASE") == 1
        assert res.skipped("MISE") == 2
        assert res.skipped_counts == {"DASE": 1, "MISE": 2}

    def test_no_skips(self):
        res = self._result({"DASE": [2.0, 2.0]})
        assert res.skipped("DASE") == 0
        assert len(res.errors("DASE")) == 2

    def test_errors_length_plus_skipped_is_app_count(self):
        res = self._result({"DASE": [2.2, None]})
        assert len(res.errors("DASE")) + res.skipped("DASE") == 2

    def test_all_skipped_mean_error_raises(self):
        res = self._result({"DASE": [None, None]})
        with pytest.raises(ValueError, match="no estimates"):
            res.mean_error("DASE")

    def test_roundtrip_preserves_nones(self):
        res = self._result({"DASE": [2.0, None]})
        back = WorkloadResult.from_dict(res.to_dict())
        assert back.estimates["DASE"] == [2.0, None]
        assert back.skipped("DASE") == 1


class TestScaledConfig:
    def test_scaled_interval(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        cfg = scaled_config()
        assert cfg.interval_cycles == 12_000

    def test_full_scale_keeps_paper_interval(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        cfg = scaled_config()
        assert cfg.interval_cycles == 50_000
        assert full_scale()

    def test_explicit_interval_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        cfg = scaled_config(interval_cycles=7_000)
        assert cfg.interval_cycles == 7_000
