"""Soak layer: the daemon under concurrent multi-tenant mixed load.

Excluded from the tier-1 run (``-m "not soak"`` in pyproject addopts);
CI's dedicated ``service-soak`` job runs ``pytest -m soak``.  N tenant
threads each fire M mixed requests — tiny workloads (some deliberately
identical across tenants to exercise dedup under contention), chaos jobs
(healthy, flaky-with-retries, and hard-raising), and a recorded scenario —
then the suite asserts global integrity:

* every submitted job reaches a terminal state, with failures only where
  chaos was told to fail;
* chaos outcomes come back in submission order with their payloads intact;
* the admission queue's fairness readout is well-formed (unfairness >= 1,
  Jain's index in (0, 1]) and every decision was audited;
* the journal holds a terminal record for every simulated job;
* the results store has zero orphans in either direction (index entries
  without record files, or record files the index does not know).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.service import ReproService, ServiceClient
from repro.service.daemon import JOURNAL_FILE, TERMINAL
from repro.store import ResultStore

pytestmark = pytest.mark.soak

N_TENANTS = 4
REQUESTS_PER_TENANT = 6


def _requests_for(tenant_idx: int) -> list[tuple[str, dict, bool]]:
    """(kind, spec, expect_failure) mix for one tenant."""
    mix: list[tuple[str, dict, bool]] = [
        # Identical across tenants: must dedup onto one simulation.
        ("workload", {"apps": ["SD", "SB"], "cycles": 20000}, False),
        # Unique per tenant: must not dedup.
        ("workload", {"apps": ["NN", "VA"], "cycles": 20000 + tenant_idx},
         False),
        ("chaos", {"jobs": [{"mode": "ok", "payload": 100 + tenant_idx},
                            {"mode": "ok", "payload": 200 + tenant_idx},
                            {"mode": "ok", "payload": 300 + tenant_idx}]},
         False),
        # Two jobs so the flaky one runs pooled: a flaky attempt hard-exits
        # its process, which only a pool worker can absorb.
        ("chaos", {"jobs": [{"mode": "flaky", "payload": tenant_idx,
                             "flaky_failures": 1},
                            {"mode": "ok", "payload": 400 + tenant_idx}],
                   "retries": 2}, False),
        ("chaos", {"jobs": [{"mode": "raise",
                             "payload": 900 + tenant_idx}]}, True),
        # A lone flaky job would run inline and could kill the daemon; the
        # daemon must refuse it with a one-line error instead.
        ("chaos", {"jobs": [{"mode": "flaky", "payload": tenant_idx,
                             "flaky_failures": 1}],
                   "retries": 2}, True),
    ]
    assert len(mix) == REQUESTS_PER_TENANT
    if tenant_idx < 2:
        # Two tenants also ask for the same recorded scenario: exercises
        # the store path under load and must dedup onto one simulation.
        mix.append(("scenario", {"name": "fig3"}, False))
    return mix


@pytest.fixture(scope="module")
def soak_daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("soak")
    svc = ReproService(
        root / "state", store_dir=str(root / "store"), policy="fair",
        jobs=2, allow_chaos=True,
    )
    svc.start()
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.stop()
    thread.join(timeout=10.0)


@pytest.fixture(scope="module")
def soak_run(soak_daemon):
    """Fire the full mixed load from N concurrent tenant threads, wait for
    every job to settle, and hand the results to the assertions."""
    svc = soak_daemon
    receipts: dict[str, list] = {}
    errors: list[str] = []

    def tenant_thread(idx: int) -> None:
        tenant = f"tenant-{idx}"
        client = ServiceClient(svc.url, timeout_s=120.0)
        rows = []
        try:
            for kind, spec, expect_failure in _requests_for(idx):
                receipt = client.submit(kind, spec, tenant=tenant)
                rows.append({"kind": kind, "spec": spec,
                             "expect_failure": expect_failure,
                             "job": receipt["job"],
                             "deduped": receipt["deduped"]})
                time.sleep(0.01)  # interleave tenants, don't serialize them
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            errors.append(f"{tenant}: {type(exc).__name__}: {exc}")
        receipts[tenant] = rows

    threads = [
        threading.Thread(target=tenant_thread, args=(i,))
        for i in range(N_TENANTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not errors, errors

    client = ServiceClient(svc.url, timeout_s=120.0)
    finals: dict[str, dict] = {}
    deadline = time.monotonic() + 300.0
    for rows in receipts.values():
        for row in rows:
            job = row["job"]
            if job in finals:
                continue
            while time.monotonic() < deadline:
                status = client.status(job)
                if status["status"] in TERMINAL:
                    finals[job] = status
                    break
                time.sleep(0.1)
            else:
                raise AssertionError(f"job {job} never settled")
    return {"svc": svc, "receipts": receipts, "finals": finals,
            "client": client}


class TestSoak:
    def test_every_job_settles_as_expected(self, soak_run):
        finals = soak_run["finals"]
        for tenant, rows in soak_run["receipts"].items():
            for row in rows:
                final = finals[row["job"]]
                want = "failed" if row["expect_failure"] else "done"
                assert final["status"] == want, (
                    f"{tenant} {row['kind']} -> {final['status']}: "
                    f"{final['error']}"
                )

    def test_shared_workload_deduped_once(self, soak_run):
        shared = {
            row["job"]
            for rows in soak_run["receipts"].values()
            for row in rows
            if row["kind"] == "workload" and row["spec"]["cycles"] == 20000
            and row["spec"]["apps"] == ["SD", "SB"]
        }
        assert len(shared) == 1  # all tenants collapsed onto one job
        final = soak_run["finals"][next(iter(shared))]
        assert final["simulations"] == 1
        assert len(final["tenants"]) == N_TENANTS

    def test_chaos_outcomes_ordered_with_payloads_intact(self, soak_run):
        finals = soak_run["finals"]
        for rows in soak_run["receipts"].values():
            for row in rows:
                if row["kind"] != "chaos" or row["expect_failure"]:
                    continue
                outcomes = finals[row["job"]]["result"]["outcomes"]
                want = [j["payload"] for j in row["spec"]["jobs"]]
                got = [o["result"]["payload"] for o in outcomes]
                assert got == want  # submission order, payloads echoed
                assert all(o["ok"] for o in outcomes)

    def test_failures_attributed_not_swallowed(self, soak_run):
        finals = soak_run["finals"]
        for rows in soak_run["receipts"].values():
            for row in rows:
                if not row["expect_failure"]:
                    continue
                final = finals[row["job"]]
                assert final["status"] == "failed"
                error = final["error"] or ""
                assert error and "\n" not in error
                if len(row["spec"]["jobs"]) == 1 and (
                    row["spec"]["jobs"][0]["mode"] == "flaky"
                ):
                    # Refused up front: inline flaky would kill the daemon.
                    assert "pooled run" in error
                    assert final["result"] is None
                else:
                    # Executed and failed: partial outcomes stay visible.
                    outcomes = (final["result"] or {}).get("outcomes", [])
                    assert any(not o["ok"] for o in outcomes)

    def test_queue_fairness_bounds_and_audit(self, soak_run):
        snap = soak_run["client"].queue()
        fairness = snap["fairness"]
        assert fairness["unfairness"] >= 1.0
        assert 0.0 < fairness["jains_index"] <= 1.0
        assert fairness["gini_wait"] is not None
        assert 0.0 <= fairness["gini_wait"] <= 1.0
        # Every tenant that completed work appears in the readout.
        assert len(fairness["tenants"]) >= N_TENANTS
        # Every grant was audited.
        assert snap["audit"]["total"] == snap["scheduled"]
        assert snap["completed"] == snap["scheduled"]
        assert snap["pending"] == {}

    def test_journal_has_terminal_for_every_job(self, soak_run):
        svc = soak_run["svc"]
        submits, terminals = set(), set()
        journal = svc.state_dir / JOURNAL_FILE
        for line in journal.read_text().splitlines():
            rec = json.loads(line)
            if rec["t"] == "submit":
                submits.add(rec["job"])
            elif rec["t"] == "terminal":
                terminals.add(rec["job"])
        assert submits == set(soak_run["finals"])
        assert submits == terminals

    def test_scenario_recorded_once_for_both_tenants(self, soak_run):
        scenario_jobs = {
            row["job"]
            for rows in soak_run["receipts"].values()
            for row in rows if row["kind"] == "scenario"
        }
        assert len(scenario_jobs) == 1
        final = soak_run["finals"][next(iter(scenario_jobs))]
        assert final["simulations"] == 1
        assert final["record_id"] is not None

    def test_store_has_zero_orphans(self, soak_run):
        store = ResultStore(soak_run["svc"].store_dir)
        indexed = {e["record_id"] for e in store.index()}
        on_disk = {p.stem for p in store.records_dir.glob("*.json")}
        assert indexed  # the scenario submissions actually recorded
        assert indexed == on_disk

    def test_daemon_still_healthy_after_soak(self, soak_run):
        health = soak_run["client"].health()
        assert health["ok"] is True
        report = soak_run["client"].report()
        assert report["n_jobs"] >= N_TENANTS * 3
