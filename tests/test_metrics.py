"""Tests for the paper's metrics (Eqs. 1, 2, 26, 27)."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    error_distribution,
    estimation_error,
    harmonic_speedup,
    mean,
    slowdown,
    unfairness,
)

positive = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)


class TestSlowdown:
    def test_basic(self):
        assert slowdown(2.0, 1.0) == 2.0

    def test_no_interference(self):
        assert slowdown(1.5, 1.5) == 1.0

    def test_zero_shared_rejected(self):
        with pytest.raises(ValueError):
            slowdown(1.0, 0.0)


class TestUnfairness:
    def test_ideal_is_one(self):
        assert unfairness([2.0, 2.0, 2.0]) == 1.0

    def test_paper_motivation_example(self):
        # SD slowdown 3.44, SA slowdown 1.37 → unfairness ≈ 2.51 (§3.1)
        assert unfairness([3.44, 1.37]) == pytest.approx(2.51, abs=0.01)

    def test_single_app(self):
        assert unfairness([1.8]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            unfairness([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            unfairness([1.0, 0.0])

    @given(st.lists(positive, min_size=1, max_size=10))
    def test_property_at_least_one(self, slowdowns):
        assert unfairness(slowdowns) >= 1.0

    @given(st.lists(positive, min_size=1, max_size=10), positive)
    def test_property_scale_invariant(self, slowdowns, k):
        scaled = [s * k for s in slowdowns]
        assert unfairness(scaled) == pytest.approx(
            unfairness(slowdowns), rel=1e-9
        )


class TestHarmonicSpeedup:
    def test_no_slowdown_gives_one(self):
        assert harmonic_speedup([1.0, 1.0]) == 1.0

    def test_even_two_way_sharing(self):
        # Both apps slowed 2×: H-speedup = 2 / (2+2) = 0.5
        assert harmonic_speedup([2.0, 2.0]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_speedup([])

    @given(st.lists(st.floats(min_value=1.0, max_value=50.0), min_size=1, max_size=8))
    def test_property_bounded_by_one_under_contention(self, slowdowns):
        assert 0.0 < harmonic_speedup(slowdowns) <= 1.0

    @given(st.lists(st.floats(min_value=1.0, max_value=50.0), min_size=2, max_size=8))
    def test_property_monotone_in_any_slowdown(self, slowdowns):
        worse = list(slowdowns)
        worse[0] *= 2
        assert harmonic_speedup(worse) < harmonic_speedup(slowdowns)


class TestEstimationError:
    def test_exact_estimate(self):
        assert estimation_error(2.0, 2.0) == 0.0

    def test_symmetric_numerator(self):
        assert estimation_error(1.5, 2.0) == pytest.approx(0.25)
        assert estimation_error(2.5, 2.0) == pytest.approx(0.25)

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            estimation_error(1.0, 0.0)

    @given(positive, positive)
    def test_property_nonnegative(self, est, act):
        assert estimation_error(est, act) >= 0.0


class TestErrorDistribution:
    def test_bins_cover_everything(self):
        d = error_distribution([0.05, 0.15, 0.25, 0.35, 0.9])
        assert sum(d.values()) == pytest.approx(1.0)
        assert d["<10%"] == pytest.approx(0.2)
        assert d[">40%"] == pytest.approx(0.2)

    def test_boundary_goes_to_upper_bin(self):
        d = error_distribution([0.1])
        assert d["<10%"] == 0.0
        assert d["10%-20%"] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_distribution([])

    @given(st.lists(st.floats(min_value=0, max_value=5), min_size=1, max_size=50))
    def test_property_fractions_sum_to_one(self, errors):
        d = error_distribution(errors)
        assert sum(d.values()) == pytest.approx(1.0)


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])
