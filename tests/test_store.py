"""Tests for the longitudinal results store: scenario identity,
hash-addressed records, legacy import round-trips, and trajectories."""

import json
import subprocess
import sys

import pytest

from repro.store import (
    INDEX_SCHEMA,
    LEGACY_SCHEMA,
    PAYLOAD_SCHEMAS,
    RECORD_SCHEMA,
    SCENARIOS,
    ResultStore,
    ScenarioSpec,
    canonical_json,
    content_id,
    iter_payloads,
    metrics_of,
    scenario_for,
    trajectory,
)

PAYLOAD = {"combos": ["SD+SB"], "unfairness": {"SD+SB": 2.5}, "sd_alone_bw": 0.4}


def spec(**overrides):
    base = dict(
        name="fig2", kind="unfairness-baseline",
        workloads=(("SD", "SB"),), policy=None, faults=(), arrivals=(),
        backend=None, seeds=(1, 2), cycles=240_000, params=(("x", 1),),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# ------------------------------------------------------------ scenario ids


class TestScenarioIdentity:
    def test_same_spec_same_id(self):
        assert spec().scenario_id() == spec().scenario_id()

    def test_id_is_sha256_hex(self):
        sid = spec().scenario_id()
        assert len(sid) == 64
        int(sid, 16)  # must not raise

    def test_canonical_round_trips(self):
        s = spec()
        again = ScenarioSpec.from_canonical(s.canonical())
        assert again == s
        assert again.scenario_id() == s.scenario_id()

    def test_id_of_matches_scenario_id(self):
        s = spec()
        assert ScenarioSpec.id_of(s.canonical()) == s.scenario_id()

    def test_params_order_immaterial(self):
        a = spec(params=(("a", 1), ("b", 2)))
        b = spec(params=(("b", 2), ("a", 1)))
        assert a.scenario_id() == b.scenario_id()

    def test_with_seed(self):
        s = spec().with_seed(9)
        assert s.seeds == (9,)
        assert s.scenario_id() != spec().scenario_id()

    def test_registry_covers_every_figure(self):
        assert set(SCENARIOS) == set(PAYLOAD_SCHEMAS)

    def test_scenario_for_unknown_is_one_line_error(self):
        with pytest.raises(ValueError, match="unknown scenario 'nope'"):
            scenario_for("nope")

    def test_registered_builders_are_deterministic(self):
        for name in SCENARIOS:
            a = scenario_for(name, seed=3)
            b = scenario_for(name, seed=3)
            assert a.scenario_id() == b.scenario_id(), name
            assert a.name == name


# --------------------------------------------------- hypothesis properties


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

seed_lists = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1), min_size=1, max_size=6
)

# One mutation per ScenarioSpec field: each must change the scenario id.
FIELD_MUTATIONS = {
    "name": lambda s: spec(name=s.name + "x"),
    "kind": lambda s: spec(kind=s.kind + "x"),
    "workloads": lambda s: spec(workloads=s.workloads + (("QR",),)),
    "policy": lambda s: spec(policy="dase_fair"),
    "faults": lambda s: spec(faults=s.faults + (0.1,)),
    "arrivals": lambda s: spec(arrivals=s.arrivals + (0.5,)),
    "backend": lambda s: spec(backend="vectorized"),
    "seeds": lambda s: spec(seeds=s.seeds + (max(s.seeds) + 1,)),
    "cycles": lambda s: spec(cycles=(s.cycles or 0) + 1),
    "params": lambda s: spec(params=s.params + (("zz", 99),)),
}


class TestScenarioIdProperties:
    def test_mutation_table_covers_every_field(self):
        import dataclasses

        assert set(FIELD_MUTATIONS) == {
            f.name for f in dataclasses.fields(ScenarioSpec)
        }

    @pytest.mark.parametrize("field", sorted(FIELD_MUTATIONS))
    def test_id_sensitive_to_field(self, field):
        base = spec()
        mutated = FIELD_MUTATIONS[field](base)
        assert mutated.scenario_id() != base.scenario_id(), field

    @settings(max_examples=50)
    @given(seeds=seed_lists, data=st.data())
    def test_seed_order_immaterial(self, seeds, data):
        shuffled = data.draw(st.permutations(seeds))
        assert (
            spec(seeds=tuple(seeds)).scenario_id()
            == spec(seeds=tuple(shuffled)).scenario_id()
        )

    @settings(max_examples=50)
    @given(seeds=seed_lists, extra=st.integers(min_value=0, max_value=2**31 - 1))
    def test_seed_set_matters_even_reordered(self, seeds, extra):
        hypothesis.assume(extra not in seeds)
        base = spec(seeds=tuple(seeds))
        grown = spec(seeds=(extra,) + tuple(seeds))
        assert base.scenario_id() != grown.scenario_id()


# ------------------------------------------------------------------- store


class TestResultStore:
    def test_record_and_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        rec = store.record(spec(), PAYLOAD, PAYLOAD_SCHEMAS["fig2"])
        again = store.load(rec.record_id)
        assert again.payload == PAYLOAD
        assert again.scenario_id == spec().scenario_id()
        assert again.payload_schema == PAYLOAD_SCHEMAS["fig2"]
        assert again.record_id == content_id(
            again.scenario_id, again.payload_schema, again.payload
        )

    def test_rerecording_dedups_content_but_logs_both(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        a = store.record(spec(), PAYLOAD, PAYLOAD_SCHEMAS["fig2"])
        b = store.record(spec(), PAYLOAD, PAYLOAD_SCHEMAS["fig2"])
        assert a.record_id == b.record_id
        assert len(list(store.records_dir.glob("*.json"))) == 1
        assert len(store.index()) == 2
        assert [e["seq"] for e in store.index()] == [0, 1]

    def test_load_by_prefix_and_name_at(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        rec = store.record(spec(), PAYLOAD, PAYLOAD_SCHEMAS["fig2"])
        assert store.load(rec.record_id[:8]).record_id == rec.record_id
        assert store.load("fig2@0").record_id == rec.record_id
        assert store.load("fig2@-1").record_id == rec.record_id
        with pytest.raises(ValueError, match="too short"):
            store.load(rec.record_id[:3])
        with pytest.raises(ValueError, match="out of range"):
            store.load("fig2@5")
        with pytest.raises(ValueError, match="no recordings"):
            store.load("fig9@0")

    def test_missing_index_with_records_is_one_line_error(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.record(spec(), PAYLOAD, PAYLOAD_SCHEMAS["fig2"])
        store.index_path.unlink()
        with pytest.raises(ValueError, match="restore the index or re-import"):
            store.index()

    def test_corrupt_index_is_one_line_error(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.directory.mkdir()
        store.index_path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            store.index()

    def test_wrong_index_schema_is_one_line_error(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.directory.mkdir()
        store.index_path.write_text(json.dumps({"schema": "x", "records": []}))
        with pytest.raises(ValueError, match=INDEX_SCHEMA.replace("/", "/")):
            store.index()

    def test_tampered_record_fails_content_hash(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        rec = store.record(spec(), PAYLOAD, PAYLOAD_SCHEMAS["fig2"])
        path = store.record_path(rec.record_id)
        doc = json.loads(path.read_text())
        doc["payload"]["sd_alone_bw"] = 0.9
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="fails its content hash"):
            store.load(rec.record_id)

    def test_empty_store_lists_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.index() == []
        assert store.scenarios() == []

    def test_gc_prunes_and_removes_orphans(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for seed in (1, 2, 3):
            store.record(
                spec().with_seed(seed), {"v": seed}, PAYLOAD_SCHEMAS["fig2"]
            )
        # Orphan: a record file never entered in the index.
        orphan = store.records_dir / ("ab" * 32 + ".json")
        orphan.write_text("{}")
        stats = store.gc()
        assert stats["orphans_removed"] == 1 and not orphan.exists()
        # Each seed is its own scenario id, so keep=1 prunes nothing here...
        assert store.gc(keep=1)["pruned"] == 0
        # ...but re-recording one scenario twice then keep=1 drops the older.
        store.record(spec().with_seed(1), {"v": 1}, PAYLOAD_SCHEMAS["fig2"])
        stats = store.gc(keep=1)
        assert stats["pruned"] == 1
        assert [e["seq"] for e in store.index()] == list(range(3))
        with pytest.raises(ValueError, match="keep must be >= 1"):
            store.gc(keep=0)

    def test_iter_payloads_filters_by_scenario(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.record(spec(), PAYLOAD, PAYLOAD_SCHEMAS["fig2"])
        store.record(
            spec(name="fig9", kind="fairness-policy"),
            {"a": 1}, PAYLOAD_SCHEMAS["fig9"],
        )
        assert len(list(iter_payloads(store))) == 2
        only = list(iter_payloads(store, "fig9"))
        assert len(only) == 1
        assert only[0][1].payload == {"a": 1}

    def test_store_path_collision_rejected(self, tmp_path):
        f = tmp_path / "file"
        f.write_text("x")
        with pytest.raises(ValueError, match="not a directory"):
            ResultStore(f)


# ----------------------------------------------------- cross-process bytes


CHILD = """
import sys
from repro.store import PAYLOAD_SCHEMAS, ResultStore, scenario_for
store = ResultStore(sys.argv[1])
rec = store.record(
    scenario_for("fig2", seed=5),
    {"combos": ["SD+SB"], "unfairness": {"SD+SB": 2.0}, "sd_alone_bw": 0.25},
    PAYLOAD_SCHEMAS["fig2"],
)
print(rec.record_id)
"""


class TestCrossProcessStability:
    def test_record_bytes_bit_stable_across_processes(self, tmp_path):
        """Two separate interpreters recording the same scenario+payload
        must produce the same record id and byte-identical record files."""
        ids, blobs = [], []
        for sub in ("a", "b"):
            out = subprocess.run(
                [sys.executable, "-c", CHILD, str(tmp_path / sub)],
                capture_output=True, text=True, check=True,
            )
            store = ResultStore(tmp_path / sub)
            rid = out.stdout.strip()
            ids.append(rid)
            blobs.append(store.record_path(rid).read_bytes())
        assert ids[0] == ids[1]
        # Byte-identical up to the provenance wall-clock stamp: the two
        # children may straddle a second boundary, and created_at is the
        # one deliberately time-dependent field (record_id excludes
        # provenance, so the ids above already prove content identity).
        import re

        mask = rb'"created_at": "[^"]*"'
        assert (re.sub(mask, b'"created_at": "*"', blobs[0])
                == re.sub(mask, b'"created_at": "*"', blobs[1]))
        # And the in-process computation agrees with both children.
        rec = ResultStore(tmp_path / "c").record(
            scenario_for("fig2", seed=5),
            {"combos": ["SD+SB"], "unfairness": {"SD+SB": 2.0},
             "sd_alone_bw": 0.25},
            PAYLOAD_SCHEMAS["fig2"],
        )
        assert rec.record_id == ids[0]

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]}) == (
            canonical_json({"a": [2, {"c": 4, "d": 3}], "b": 1})
        )


# ------------------------------------------------------------ legacy import


class TestLegacyImport:
    def test_import_reexports_byte_identical(self, tmp_path):
        legacy = {"pair": ["SD", "SB"], "errors": {"clean": 11.5, "0.2": 14.0}}
        src = tmp_path / "degradation.json"
        src.write_text(json.dumps(legacy, indent=1, sort_keys=True) + "\n")
        store = ResultStore(tmp_path / "store")
        rec = store.import_legacy(src)
        assert rec.payload_schema == LEGACY_SCHEMA
        assert rec.scenario["name"] == "degradation"
        assert rec.scenario["kind"] == "legacy-import"
        assert rec.provenance["imported_from"] == "degradation.json"
        assert store.export_payload(rec.record_id) == src.read_text()
        assert store.export_payload(rec.record_id).encode() == src.read_bytes()

    def test_import_missing_and_corrupt_one_line(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ValueError, match="does not exist"):
            store.import_legacy(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(ValueError, match="not valid JSON"):
            store.import_legacy(bad)

    def test_import_with_explicit_name_and_schema(self, tmp_path):
        src = tmp_path / "old.json"
        src.write_text(json.dumps({"correlation": 0.98}) + "\n")
        store = ResultStore(tmp_path / "store")
        rec = store.import_legacy(
            src, scenario_name="fig3", payload_schema=PAYLOAD_SCHEMAS["fig3"]
        )
        assert rec.scenario["name"] == "fig3"
        assert rec.payload_schema == PAYLOAD_SCHEMAS["fig3"]
        # It now participates in fig3 trajectories like a native record.
        assert store.load("fig3@-1").record_id == rec.record_id


# -------------------------------------------------------------- trajectory


class TestTrajectory:
    def test_metrics_and_series(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for bw in (0.25, 0.30):
            store.record(
                spec(), {"combos": ["SD+SB"],
                         "unfairness": {"SD+SB": 2.0 + bw},
                         "sd_alone_bw": bw},
                PAYLOAD_SCHEMAS["fig2"],
            )
        rec = store.load("fig2@-1")
        m = metrics_of(rec)
        assert m["sd_alone_bw"] == pytest.approx(0.30)
        assert m["unfairness.mean"] == pytest.approx(2.30)
        series = trajectory(store)
        assert list(series) == ["fig2"]
        pts = series["fig2"]["points"]
        assert len(pts) == 2
        assert [p["metrics"]["sd_alone_bw"] for p in pts] == [0.25, 0.30]
        assert series["fig2"]["metrics"]["sd_alone_bw"] == [
            (0, 0.25), (1, 0.30)
        ]

    def test_generic_fallback_for_legacy_payloads(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        src = tmp_path / "old.json"
        src.write_text(json.dumps({"score": 1.5, "nested": {"x": 2}}) + "\n")
        rec = store.import_legacy(src)
        m = metrics_of(rec)
        assert m == {"score": 1.5}  # top-level numeric scalars only

    def test_record_schema_constant_matches_disk(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        rec = store.record(spec(), PAYLOAD, PAYLOAD_SCHEMAS["fig2"])
        doc = json.loads(store.record_path(rec.record_id).read_text())
        assert doc["schema"] == RECORD_SCHEMA
