"""Observability must never change simulation results.

The golden fixtures of ``tests/test_golden.py`` are re-measured here with
observability *fully enabled* (event tracer + metrics registry + telemetry
attached) and must match the committed goldens exactly — the recordings
were produced by untraced runs, so any perturbation from the instrumented
hot paths shows up as a golden mismatch.  A direct traced-vs-untraced
comparison of the full result dict closes the loop at full precision.
"""

import json
import pathlib

import pytest

from repro.harness import run_workload, scaled_config
from repro.obs import Observation

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "golden_pairs.json"

PAIR = ("SD", "SB")
QUAD = ("SD", "NN", "CS", "SB")
SHARED_CYCLES = 40_000


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _measure_traced(combo):
    obs = Observation()
    res = run_workload(
        list(combo), config=scaled_config(),
        shared_cycles=SHARED_CYCLES, models=(), trace=obs,
    )
    return res, obs


def _assert_matches(res, expected):
    assert res.instructions == expected["instructions"]
    assert res.alone_cycles == expected["alone_cycles"]
    assert res.actual_slowdowns == pytest.approx(
        expected["slowdowns"], rel=1e-9
    )
    assert res.actual_unfairness == pytest.approx(
        expected["unfairness"], rel=1e-9
    )
    assert res.actual_hspeedup == pytest.approx(
        expected["hspeedup"], rel=1e-9
    )


@pytest.mark.slow
def test_traced_pair_matches_golden(golden):
    res, obs = _measure_traced(PAIR)
    _assert_matches(res, golden["pairs"]["+".join(PAIR)])
    # The recording really happened (this is not a vacuous pass).
    assert obs.tracer.n_emitted > 0
    assert obs.tracer.counts_by_name()["dram.service"] > 0
    assert obs.telemetry is not None and obs.telemetry.samples


@pytest.mark.slow
def test_traced_quad_matches_golden(golden):
    res, obs = _measure_traced(QUAD)
    _assert_matches(res, golden["quads"]["+".join(QUAD)])
    assert obs.tracer.n_emitted > 0
    assert obs.tracer.topology["n_apps"] == 4


@pytest.mark.slow
def test_traced_equals_untraced_bit_for_bit():
    """Full-precision digest equality: the traced run's complete result
    dict — instructions, alone cycles, slowdowns, bandwidth — must be
    byte-identical to the untraced run's."""
    traced, _ = _measure_traced(PAIR)
    untraced = run_workload(
        list(PAIR), config=scaled_config(),
        shared_cycles=SHARED_CYCLES, models=(),
    )
    assert json.dumps(traced.to_dict(), sort_keys=True) == json.dumps(
        untraced.to_dict(), sort_keys=True
    )
