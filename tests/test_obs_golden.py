"""Observability must never change simulation results.

The golden fixtures of ``tests/test_golden.py`` are re-measured here with
observability *fully enabled* (event tracer + metrics registry + telemetry
attached) and must match the committed goldens exactly — the recordings
were produced by untraced runs, so any perturbation from the instrumented
hot paths shows up as a golden mismatch.  A direct traced-vs-untraced
comparison of the full result dict closes the loop at full precision.
"""

import json
import pathlib

import pytest

from repro.harness import run_workload, scaled_config
from repro.obs import Observation

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "golden_pairs.json"

PAIR = ("SD", "SB")
QUAD = ("SD", "NN", "CS", "SB")
SHARED_CYCLES = 40_000


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _measure_traced(combo):
    obs = Observation()
    res = run_workload(
        list(combo), config=scaled_config(),
        shared_cycles=SHARED_CYCLES, models=(), trace=obs,
    )
    return res, obs


def _assert_matches(res, expected):
    assert res.instructions == expected["instructions"]
    assert res.alone_cycles == expected["alone_cycles"]
    assert res.actual_slowdowns == pytest.approx(
        expected["slowdowns"], rel=1e-9
    )
    assert res.actual_unfairness == pytest.approx(
        expected["unfairness"], rel=1e-9
    )
    assert res.actual_hspeedup == pytest.approx(
        expected["hspeedup"], rel=1e-9
    )


@pytest.mark.slow
def test_traced_pair_matches_golden(golden):
    res, obs = _measure_traced(PAIR)
    _assert_matches(res, golden["pairs"]["+".join(PAIR)])
    # The recording really happened (this is not a vacuous pass).
    assert obs.tracer.n_emitted > 0
    assert obs.tracer.counts_by_name()["dram.service"] > 0
    assert obs.telemetry is not None and obs.telemetry.samples


@pytest.mark.slow
def test_traced_quad_matches_golden(golden):
    res, obs = _measure_traced(QUAD)
    _assert_matches(res, golden["quads"]["+".join(QUAD)])
    assert obs.tracer.n_emitted > 0
    assert obs.tracer.topology["n_apps"] == 4


@pytest.mark.slow
def test_traced_equals_untraced_bit_for_bit():
    """Full-precision digest equality: the traced run's complete result
    dict — instructions, alone cycles, slowdowns, bandwidth — must be
    byte-identical to the untraced run's."""
    traced, _ = _measure_traced(PAIR)
    untraced = run_workload(
        list(PAIR), config=scaled_config(),
        shared_cycles=SHARED_CYCLES, models=(),
    )
    assert json.dumps(traced.to_dict(), sort_keys=True) == json.dumps(
        untraced.to_dict(), sort_keys=True
    )


# --------------------------------------------------------------- audit layer


def _measure_audited(combo):
    """Audited run: audit log + the dry-run shadow scheduler, whose private
    DASE emits the model audits.

    The goldens were recorded with ``models=()``, so the comparison keeps
    that: DASE and the shadow policy are pure observers, whereas MISE/ASM
    attach a priority rotator that *by design* changes memory arbitration
    — estimator choice is a run parameter, not an observability layer.
    """
    from repro.policies import DASEFairPolicy

    obs = Observation(audit=True)
    res = run_workload(
        list(combo), config=scaled_config(),
        shared_cycles=SHARED_CYCLES, models=(),
        policy=DASEFairPolicy(scaled_config(), dry_run=True), trace=obs,
    )
    return res, obs


@pytest.mark.slow
@pytest.mark.parametrize("combo", [PAIR, QUAD], ids=["pair", "quad"])
def test_audited_matches_golden(golden, combo):
    """Audited runs (shadow policy + audit log) reproduce the committed
    goldens bit-identically — auditing never perturbs the sim."""
    res, obs = _measure_audited(combo)
    kind = "pairs" if len(combo) == 2 else "quads"
    _assert_matches(res, golden[kind]["+".join(combo)])
    # The audit really happened (not a vacuous pass): the policy's DASE
    # audited every app every interval, and every interval got a decision.
    audit = obs.audit
    assert audit is not None
    assert audit.models() == ["DASE"]
    n_intervals = SHARED_CYCLES // scaled_config().interval_cycles
    assert len(audit.model_audits) == len(combo) * n_intervals
    assert len(audit.decision_audits) == n_intervals
    # Audit instants were mirrored into the trace ring.
    counts = obs.tracer.counts_by_name()
    assert counts["audit.model"] == len(audit.model_audits)
    assert counts["policy.decision"] == len(audit.decision_audits)


@pytest.mark.slow
def test_audited_equals_plain_bit_for_bit():
    """The full result dict of an audited run is byte-identical to a plain
    (untraced, unaudited, unscheduled) run's — the repro diff CI gate in
    test form."""
    audited, _ = _measure_audited(PAIR)
    plain = run_workload(
        list(PAIR), config=scaled_config(),
        shared_cycles=SHARED_CYCLES, models=(),
    )
    assert json.dumps(audited.to_dict(), sort_keys=True) == json.dumps(
        plain.to_dict(), sort_keys=True
    )


@pytest.mark.slow
def test_decision_targets_sum_to_sm_count():
    """Every audited DASE-Fair target (and every scored candidate) is a
    true partition of the GPU: parts ≥ 1 summing to n_sms — including
    under a real (migrating) policy with draining in flight."""
    from repro.policies import DASEFairPolicy

    cfg = scaled_config()
    obs = Observation(audit=True)
    run_workload(
        list(PAIR), config=cfg, shared_cycles=60_000, models=("DASE",),
        policy=DASEFairPolicy(cfg), trace=obs,
    )
    audit = obs.audit
    assert audit.decision_audits
    assert any(d.action == "migrate" for d in audit.decision_audits)
    for d in audit.decision_audits:
        assert sum(d.current) == cfg.n_sms
        if d.target is not None:
            assert sum(d.target) == cfg.n_sms
            assert min(d.target) >= 1
        for cand, _unf in d.candidates or []:
            assert sum(cand) == cfg.n_sms and min(cand) >= 1
