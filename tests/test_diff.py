"""Unit tests for cross-run differential reports (repro.obs.diff)."""

import json

import pytest

from repro.obs.diff import (
    DEFAULT_IGNORE,
    DIFF_SCHEMA,
    diff_paths,
    diff_payloads,
    load_comparable,
    navigate,
)


def test_identical_payloads():
    payload = {"x": 1.0, "nested": {"y": [1, 2, 3], "s": "ok"}}
    res = diff_payloads(payload, json.loads(json.dumps(payload)))
    assert res.identical
    assert res.compared == 5
    assert res.to_dict()["schema"] == DIFF_SCHEMA
    assert "IDENTICAL" in res.render()


def test_numeric_drift_and_tolerance():
    a = {"v": 100.0}
    b = {"v": 101.0}
    res = diff_payloads(a, b)
    assert not res.identical
    d = res.drifts[0]
    assert d.path == "v" and d.note == "value"
    assert d.rel == pytest.approx(1.0 / 101.0)
    # Within tolerance → clean.
    assert diff_payloads(a, b, rel_tol=0.02).identical
    # int-vs-float compares by value, not type.
    assert diff_payloads({"v": 2}, {"v": 2.0}).identical


def test_bool_never_compares_by_tolerance():
    # bool is an int subclass; True vs 1 must still be flagged.
    res = diff_payloads({"ok": True}, {"ok": 1}, rel_tol=1.0)
    assert not res.identical
    assert res.drifts[0].note == "type"
    assert diff_payloads({"ok": True}, {"ok": True}).identical


def test_structural_drift():
    res = diff_payloads({"a": 1, "b": 2}, {"b": 2, "c": 3})
    notes = {d.path: d.note for d in res.drifts}
    assert notes == {"a": "missing-in-b", "c": "missing-in-a"}

    res = diff_payloads({"xs": [1, 2]}, {"xs": [1, 2, 3]})
    assert res.drifts[0].note == "length"
    assert res.drifts[0].path == "xs"

    res = diff_payloads({"x": "s"}, {"x": 3})
    assert res.drifts[0].note == "type"


def test_nested_paths_and_render():
    a = {"workload": {"estimates": {"DASE": [2.0, 1.1]}}}
    b = {"workload": {"estimates": {"DASE": [2.0, 1.3]}}}
    res = diff_payloads(a, b)
    assert res.drifts[0].path == "workload.estimates.DASE[1]"
    rendered = res.render()
    assert "DRIFT" in rendered and "workload.estimates.DASE[1]" in rendered


def test_ignore_keys():
    a = {"ts": 1.0, "cache": {"hits": 3}, "real": 5}
    b = {"ts": 9.0, "cache": {"hits": 0}, "real": 5}
    res = diff_payloads(a, b)  # DEFAULT_IGNORE covers ts and cache
    assert res.identical and res.ignored == 2
    res = diff_payloads(a, b, ignore=frozenset())
    assert {d.path for d in res.drifts} == {"ts", "cache.hits"}
    assert "ts" in DEFAULT_IGNORE and "cache" in DEFAULT_IGNORE


def test_nan_equals_nan():
    assert diff_payloads({"v": float("nan")}, {"v": float("nan")}).identical


def test_navigate():
    payload = {"workload": {"estimates": {"DASE": [2.0, 1.1]}}}
    assert navigate(payload, "workload.estimates.DASE") == [2.0, 1.1]
    assert navigate(payload, "workload.estimates.DASE.1") == 1.1
    assert navigate(payload, "") is payload
    with pytest.raises(ValueError, match="bogus"):
        navigate(payload, "workload.bogus")
    with pytest.raises(ValueError, match="out of range"):
        navigate(payload, "workload.estimates.DASE.7")


def test_load_comparable_kinds(tmp_path):
    # Directory → its run.json.
    run = tmp_path / "run"
    run.mkdir()
    (run / "run.json").write_text('{"schema": "repro.obs.run/1"}')
    assert load_comparable(run)["schema"] == "repro.obs.run/1"

    # Plain JSON file.
    f = tmp_path / "x.json"
    f.write_text("[1, 2]")
    assert load_comparable(f) == [1, 2]

    # JSONL → keyed by record "key", so order does not matter.
    log = tmp_path / "sweep.jsonl"
    log.write_text(
        '{"key": "SD+SB", "ok": true}\n\n{"key": "NN+CS", "ok": true}\n'
    )
    recs = load_comparable(log)
    assert set(recs) == {"SD+SB", "NN+CS"}

    # Errors are one-line ValueErrors, not tracebacks.
    with pytest.raises(ValueError, match="does not exist"):
        load_comparable(tmp_path / "nope.json")
    with pytest.raises(ValueError, match="no run.json"):
        load_comparable(tmp_path)
    bad = tmp_path / "bad.json"
    bad.write_text("{oops")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_comparable(bad)


def test_diff_paths_with_only(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(
        {"workload": {"slow": [1.5, 2.0]}, "trace": {"events": 10}}
    ))
    b.write_text(json.dumps(
        {"workload": {"slow": [1.5, 2.0]}, "trace": {"events": 99}}
    ))
    assert not diff_paths(a, b).identical
    res = diff_paths(a, b, only="workload")
    assert res.identical
    assert "workload" in res.path_a


def test_jsonl_diff_pairs_by_key(tmp_path):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    # Same records, different completion order and wall-clock noise.
    a.write_text(
        '{"key": "SD+SB", "ok": true, "ts": 1.0, "index": 0}\n'
        '{"key": "NN+CS", "ok": true, "ts": 2.0, "index": 1}\n'
    )
    b.write_text(
        '{"key": "NN+CS", "ok": true, "ts": 7.0, "index": 0}\n'
        '{"key": "SD+SB", "ok": true, "ts": 9.0, "index": 1}\n'
    )
    assert diff_paths(a, b).identical
    # A flipped outcome is caught.
    b.write_text(
        '{"key": "NN+CS", "ok": false, "ts": 7.0, "index": 0}\n'
        '{"key": "SD+SB", "ok": true, "ts": 9.0, "index": 1}\n'
    )
    res = diff_paths(a, b)
    assert [d.path for d in res.drifts] == ["NN+CS.ok"]


# ---------------------------------------------------- sweep-stats diffing


def _sweep_payload(**over):
    base = {
        "schema": "repro.obs.sweep/1",
        "n_jobs": 4, "ok": 4, "failed": 0, "incomplete": 0, "resumed": 0,
        "wall_s": 10.0, "busy_s": 18.0, "cpu_s": 17.0,
        "parallel_efficiency": 0.9,
        "latency": {"p50": 4.0, "p95": 6.0, "p99": 6.4,
                    "mean": 4.5, "max": 6.5},
        "phases": {"replay": {"count": 8, "total_s": 9.0},
                   "simulate": {"count": 4, "total_s": 8.0}},
        "cache": {"hits": 6, "misses": 2, "stores": 2,
                  "hit_rate": 0.75, "est_saved_s": 5.0},
        "backends": {"reference": {"jobs": 4, "total_s": 18.0}},
        "workers": {"101": {"jobs": 4, "busy_s": 18.0, "cpu_s": 17.0,
                            "rss_peak_kb": 40000}},
        "stragglers": [], "failures": [],
    }
    base.update(over)
    return base


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return path


def test_sweep_diff_ignores_wallclock_and_worker_noise(tmp_path):
    # Same sweep re-run: different pids, wall time, efficiency, RSS —
    # none of which is drift between two sweep-stats manifests.
    a = _write(tmp_path / "a.json", _sweep_payload())
    b = _write(tmp_path / "b.json", _sweep_payload(
        wall_s=20.0, busy_s=19.5, cpu_s=18.0, parallel_efficiency=0.5,
        workers={"202": {"jobs": 2, "busy_s": 9.0, "cpu_s": 8.5,
                         "rss_peak_kb": 39000},
                 "203": {"jobs": 2, "busy_s": 10.5, "cpu_s": 9.5,
                         "rss_peak_kb": 41000}},
    ))
    res = diff_paths(a, b, rel_tol=0.2)
    assert res.identical, [d.path for d in res.drifts]


def test_sweep_diff_catches_latency_and_cache_drift(tmp_path):
    a = _write(tmp_path / "a.json", _sweep_payload())
    # p95 regressed 3x and the cache hit rate collapsed: both must trip
    # even though ordinary run diffs ignore the "cache" subtree.
    b = _write(tmp_path / "b.json", _sweep_payload(
        latency={"p50": 4.1, "p95": 18.0, "p99": 19.0,
                 "mean": 7.0, "max": 20.0},
        cache={"hits": 1, "misses": 7, "stores": 7,
               "hit_rate": 0.125, "est_saved_s": 0.4},
    ))
    res = diff_paths(a, b, rel_tol=0.2)
    assert not res.identical
    paths = {d.path for d in res.drifts}
    assert "latency.p95" in paths
    assert "cache.hit_rate" in paths
    assert "latency.p50" not in paths  # within the 20% tolerance


def test_sweep_diff_custom_ignore_disables_auto_switch(tmp_path):
    a = _write(tmp_path / "a.json", _sweep_payload())
    b = _write(tmp_path / "b.json", _sweep_payload(wall_s=99.0))
    # An explicit ignore set is respected verbatim: wall_s now drifts.
    res = diff_paths(a, b, ignore=frozenset({"ts"}))
    assert not res.identical
    assert {d.path for d in res.drifts} == {"wall_s"}


def test_sweep_diff_counts_are_exact(tmp_path):
    a = _write(tmp_path / "a.json", _sweep_payload())
    b = _write(tmp_path / "b.json", _sweep_payload(ok=3, failed=1))
    res = diff_paths(a, b, rel_tol=0.2)
    assert not res.identical
    assert {d.path for d in res.drifts} >= {"ok", "failed"}
