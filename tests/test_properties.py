"""Property-based tests for the metrics and the LRU cache model.

Guarded on hypothesis being importable (it is an optional dev
dependency); the suite is skipped, not failed, where it is absent.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.config import CacheConfig  # noqa: E402
from repro.metrics import (  # noqa: E402
    error_distribution,
    estimation_error,
    harmonic_speedup,
    unfairness,
)
from repro.sim.cache import SetAssocCache  # noqa: E402

#: Valid slowdowns: ≥ 1 under contention (Eq. 1), finite for our sims.
slowdowns = st.lists(
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=8,
)


class TestMetricsProperties:
    @given(slowdowns)
    def test_unfairness_at_least_one(self, s):
        assert unfairness(s) >= 1.0

    @given(slowdowns)
    def test_unfairness_scale_invariant(self, s):
        scaled = [2.0 * x for x in s]
        assert unfairness(scaled) == pytest.approx(unfairness(s), rel=1e-9)

    @given(slowdowns)
    def test_harmonic_speedup_bounds(self, s):
        """N / Σ slowdown ∈ (0, 1] when every slowdown is ≥ 1."""
        hs = harmonic_speedup(s)
        assert 0.0 < hs <= 1.0

    @given(slowdowns)
    def test_harmonic_speedup_unit_at_no_contention(self, s):
        assert harmonic_speedup([1.0] * len(s)) == pytest.approx(1.0)

    @given(
        st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
    )
    def test_estimation_error_nonnegative_and_zero_iff_exact(self, est, act):
        err = estimation_error(est, act)
        assert err >= 0.0
        assert estimation_error(act, act) == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=64))
    def test_error_distribution_sums_to_one(self, errs):
        dist = error_distribution(errs)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in dist.values())


#: Small geometries keep examples fast while still exercising eviction.
cache_configs = st.sampled_from([
    CacheConfig(size_bytes=2048, line_bytes=64, assoc=2),
    CacheConfig(size_bytes=4096, line_bytes=64, assoc=4),
    CacheConfig(size_bytes=8192, line_bytes=128, assoc=8),
])

accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),   # tag
        st.integers(min_value=0, max_value=3),    # app
    ),
    min_size=1, max_size=200,
)


class TestLRUCacheProperties:
    @given(cache_configs, accesses)
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_assoc(self, cfg, seq):
        cache = SetAssocCache(cfg)
        target_set = 0
        for tag, app in seq:
            cache.access(target_set, tag, app)
            assert len(cache._sets[target_set]) <= cfg.assoc

    @given(cache_configs, accesses)
    @settings(max_examples=50)
    def test_stats_partition_accesses(self, cfg, seq):
        cache = SetAssocCache(cfg)
        for tag, app in seq:
            cache.access(0, tag, app)
        total = sum(s.accesses for s in cache.stats.values())
        assert total == len(seq)
        for s in cache.stats.values():
            assert s.hits + s.misses == s.accesses
            assert 0.0 <= s.hit_rate <= 1.0

    @given(cache_configs, accesses)
    @settings(max_examples=50)
    def test_immediate_reaccess_hits(self, cfg, seq):
        cache = SetAssocCache(cfg)
        for tag, app in seq:
            cache.access(0, tag, app)
            assert cache.contains(0, tag)
            assert cache.access(0, tag, app) is True

    @given(cache_configs)
    def test_lru_eviction_order(self, cfg):
        """Filling a set then adding one more evicts exactly the LRU tag."""
        cache = SetAssocCache(cfg)
        for tag in range(cfg.assoc):
            assert cache.access(0, tag, app=0) is False
        cache.access(0, 0, app=0)  # make tag 0 MRU; tag 1 is now LRU
        cache.access(0, cfg.assoc, app=0)  # one past capacity
        assert not cache.contains(0, 1)
        assert cache.contains(0, 0)
        assert cache.contains(0, cfg.assoc)

    @given(cache_configs, accesses)
    @settings(max_examples=25)
    def test_flush_empties_every_set(self, cfg, seq):
        cache = SetAssocCache(cfg)
        for tag, app in seq:
            cache.access(0, tag, app)
        cache.flush()
        assert all(not s for s in cache._sets)
        assert cache.occupancy_by_app() == {}
