"""Golden regression fixtures: three representative two-app workloads plus
one four-app workload.

The simulator is deterministic, so small-scale expected values can be
checked in and compared exactly: any drift in the memory system, the SM
model, or the matched-instruction methodology shows up here as a failure
rather than silently shifting every figure.  The same fixtures are checked
both inline and through the process-pool sweep path, so the pooled harness
is held to the identical bit-for-bit contract.

Regenerate after an *intentional* model change with:

    PYTHONPATH=src python tests/test_golden.py --regen

then review the diff of ``tests/golden/golden_pairs.json`` in the PR.
"""

import json
import pathlib
import sys

import pytest

from repro.harness import run_workload, scaled_config
from repro.harness.replay_cache import config_fingerprint
from repro.opensys import trace_schedule

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "golden_pairs.json"

#: A memory-victim pair, a balanced pair, and a cache-sensitive pair.
PAIRS = [("SD", "SB"), ("NN", "VA"), ("CS", "SC")]
#: Four-way mix: two bandwidth hogs + a latency-sensitive app + a cache app.
QUADS = [("SD", "NN", "CS", "SB")]
SHARED_CYCLES = 40_000

#: Open-system scenario: the SD+SB base pair plus one mid-run NN arrival
#: that departs again — exercising admission (idle-reserve grant), the
#: graceful block-drain, partial-lifetime slowdown accounting, and DASE on
#: a fragmented interval history.  NN (max_resident 2) is the pool app
#: whose drain completes within the window at this scale.
OPEN_BASE = ("SD", "SB")
OPEN_SCHEDULE = trace_schedule([("NN", 11_000, 23_000)])
OPEN_CYCLES = 96_000


def _config():
    return scaled_config()


def _measure(pair):
    res = run_workload(list(pair), config=_config(),
                       shared_cycles=SHARED_CYCLES, models=())
    return {
        "instructions": res.instructions,
        "alone_cycles": res.alone_cycles,
        "slowdowns": res.actual_slowdowns,
        "unfairness": res.actual_unfairness,
        "hspeedup": res.actual_hspeedup,
    }


def _measure_open():
    res = run_workload(
        list(OPEN_BASE), config=_config(), shared_cycles=OPEN_CYCLES,
        models=("DASE",), arrivals=OPEN_SCHEDULE,
    )
    return {
        "instructions": res.instructions,
        "alone_cycles": res.alone_cycles,
        "slowdowns": res.actual_slowdowns,
        "resident_cycles": res.resident_cycles,
        "waiting_cycles": res.waiting_cycles,
        "dase": res.estimates["DASE"],
        "schedule_digest": OPEN_SCHEDULE.digest(),
    }


def _assert_open_matches(got, expected):
    # Ints exact; float lists may contain None (no ground truth / no
    # estimate), so compare element-wise.
    for k in ("instructions", "alone_cycles", "resident_cycles",
              "waiting_cycles", "schedule_digest"):
        assert got[k] == expected[k], k
    for k in ("slowdowns", "dase"):
        assert len(got[k]) == len(expected[k])
        for g, e in zip(got[k], expected[k]):
            if e is None:
                assert g is None
            else:
                assert g == pytest.approx(e, rel=1e-9)


def regenerate() -> None:
    payload = {
        "shared_cycles": SHARED_CYCLES,
        "config_fingerprint": config_fingerprint(_config()),
        "pairs": {"+".join(p): _measure(p) for p in PAIRS},
        "quads": {"+".join(q): _measure(q) for q in QUADS},
        "open": {
            "shared_cycles": OPEN_CYCLES,
            "base": list(OPEN_BASE),
            "arrivals": [
                [a.name, a.at, a.leave_at] for a in OPEN_SCHEDULE.arrivals
            ],
            **_measure_open(),
        },
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def test_golden_config_unchanged(golden):
    """The fixture documents which config it was measured under."""
    assert golden["config_fingerprint"] == config_fingerprint(_config()), (
        "default scaled config changed — regenerate the golden file and "
        "review the numeric diff"
    )
    assert golden["shared_cycles"] == SHARED_CYCLES


def _assert_matches(got, expected):
    # Integer outputs must match exactly; floats to within accumulated
    # rounding noise (the sim itself is bit-deterministic — the tolerance
    # only guards against libm differences across platforms).
    assert got["instructions"] == expected["instructions"]
    assert got["alone_cycles"] == expected["alone_cycles"]
    for k in ("slowdowns",):
        assert got[k] == pytest.approx(expected[k], rel=1e-9)
    for k in ("unfairness", "hspeedup"):
        assert got[k] == pytest.approx(expected[k], rel=1e-9)


@pytest.mark.slow
@pytest.mark.parametrize("pair", PAIRS, ids="+".join)
def test_golden_pair(golden, pair):
    _assert_matches(_measure(pair), golden["pairs"]["+".join(pair)])


@pytest.mark.slow
@pytest.mark.parametrize("quad", QUADS, ids="+".join)
def test_golden_quad(golden, quad):
    _assert_matches(_measure(quad), golden["quads"]["+".join(quad)])


@pytest.mark.slow
def test_golden_open_system(golden):
    """The seeded open-system scenario is bit-reproducible: admission and
    drain cycles, partial residency windows, waiting times, and DASE's
    partial-history estimates all pin to the committed fixture."""
    _assert_open_matches(_measure_open(), golden["open"])


@pytest.mark.slow
def test_golden_open_system_pooled(golden):
    """Same scenario through the process-pool path: the ArrivalSchedule
    pickles across the worker boundary and replays bit-identically."""
    from repro.harness.parallel import WorkloadJob, run_jobs

    jobs = [WorkloadJob(
        apps=OPEN_BASE, config=_config(), shared_cycles=OPEN_CYCLES,
        models=("DASE",), arrivals=OPEN_SCHEDULE,
    )] * 2
    for outcome in run_jobs(jobs, n_jobs=2):
        res = outcome.unwrap()
        got = {
            "instructions": res.instructions,
            "alone_cycles": res.alone_cycles,
            "slowdowns": res.actual_slowdowns,
            "resident_cycles": res.resident_cycles,
            "waiting_cycles": res.waiting_cycles,
            "dase": res.estimates["DASE"],
            "schedule_digest": OPEN_SCHEDULE.digest(),
        }
        _assert_open_matches(got, golden["open"])


@pytest.mark.slow
def test_golden_all_pooled(golden):
    """Every golden workload, reproduced through the process-pool sweep
    path (``run_workloads`` with 2 workers): the pooled harness must
    return the exact fixtures the inline path produces."""
    from repro.harness.parallel import run_workloads

    workloads = [list(p) for p in PAIRS] + [list(q) for q in QUADS]
    outcomes = run_workloads(
        workloads, jobs=2, config=_config(),
        shared_cycles=SHARED_CYCLES, models=(),
    )
    for combo, outcome in zip(workloads, outcomes):
        res = outcome.unwrap()
        got = {
            "instructions": res.instructions,
            "alone_cycles": res.alone_cycles,
            "slowdowns": res.actual_slowdowns,
            "unfairness": res.actual_unfairness,
            "hspeedup": res.actual_hspeedup,
        }
        key = "+".join(combo)
        section = "pairs" if len(combo) == 2 else "quads"
        _assert_matches(got, golden[section][key])


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
        sys.exit(2)
