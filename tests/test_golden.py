"""Golden regression fixtures for three representative two-app workloads.

The simulator is deterministic, so small-scale expected values can be
checked in and compared exactly: any drift in the memory system, the SM
model, or the matched-instruction methodology shows up here as a failure
rather than silently shifting every figure.

Regenerate after an *intentional* model change with:

    PYTHONPATH=src python tests/test_golden.py --regen

then review the diff of ``tests/golden/golden_pairs.json`` in the PR.
"""

import json
import pathlib
import sys

import pytest

from repro.harness import run_workload, scaled_config
from repro.harness.replay_cache import config_fingerprint

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "golden_pairs.json"

#: A memory-victim pair, a balanced pair, and a cache-sensitive pair.
PAIRS = [("SD", "SB"), ("NN", "VA"), ("CS", "SC")]
SHARED_CYCLES = 40_000


def _config():
    return scaled_config()


def _measure(pair):
    res = run_workload(list(pair), config=_config(),
                       shared_cycles=SHARED_CYCLES, models=())
    return {
        "instructions": res.instructions,
        "alone_cycles": res.alone_cycles,
        "slowdowns": res.actual_slowdowns,
        "unfairness": res.actual_unfairness,
        "hspeedup": res.actual_hspeedup,
    }


def regenerate() -> None:
    payload = {
        "shared_cycles": SHARED_CYCLES,
        "config_fingerprint": config_fingerprint(_config()),
        "pairs": {"+".join(p): _measure(p) for p in PAIRS},
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def test_golden_config_unchanged(golden):
    """The fixture documents which config it was measured under."""
    assert golden["config_fingerprint"] == config_fingerprint(_config()), (
        "default scaled config changed — regenerate the golden file and "
        "review the numeric diff"
    )
    assert golden["shared_cycles"] == SHARED_CYCLES


@pytest.mark.slow
@pytest.mark.parametrize("pair", PAIRS, ids="+".join)
def test_golden_pair(golden, pair):
    expected = golden["pairs"]["+".join(pair)]
    got = _measure(pair)
    # Integer outputs must match exactly; floats to within accumulated
    # rounding noise (the sim itself is bit-deterministic — the tolerance
    # only guards against libm differences across platforms).
    assert got["instructions"] == expected["instructions"]
    assert got["alone_cycles"] == expected["alone_cycles"]
    for k in ("slowdowns",):
        assert got[k] == pytest.approx(expected[k], rel=1e-9)
    for k in ("unfairness", "hspeedup"):
        assert got[k] == pytest.approx(expected[k], rel=1e-9)


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
        sys.exit(2)
