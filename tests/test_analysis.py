"""Tests for the post-hoc results analysis."""

import pytest

from repro.analysis import (
    available_results,
    full_summary,
    render_summary,
    summarize_accuracy,
    summarize_fig9,
)
from repro.harness.persist import save_result


@pytest.fixture()
def results_dir(tmp_path):
    save_result(
        "fig5_two_app_error",
        {"per_workload": {}, "means": {"DASE": 0.06, "MISE": 0.33, "ASM": 0.29}},
        directory=tmp_path,
    )
    save_result(
        "fig9_dase_fair",
        {
            "workloads": ["SD+SB"],
            "unfairness_even": {"SD+SB": 4.0},
            "unfairness_fair": {"SD+SB": 2.0},
            "hspeedup_even": {"SD+SB": 0.3},
            "hspeedup_fair": {"SD+SB": 0.4},
        },
        directory=tmp_path,
    )
    save_result(
        "fig2_unfairness",
        {"unfairness": {"SD+SB": 4.5, "SD+VA": 3.0}},
        directory=tmp_path,
    )
    return tmp_path


def test_available_results(results_dir):
    names = available_results(results_dir)
    assert "fig5_two_app_error" in names
    assert available_results(results_dir / "nope") == []


def test_accuracy_rows(results_dir):
    rows = summarize_accuracy("fig5_two_app_error", results_dir)
    by_model = {r.quantity: r for r in rows}
    dase = by_model["DASE mean error"]
    assert dase.measured == "6.0%"
    assert dase.paper == "8.8%"
    assert dase.verdict == "shape-ok"
    assert by_model["MISE mean error"].verdict == "shape-ok"


def test_accuracy_flags_suspicious_baseline(tmp_path):
    save_result(
        "fig5_two_app_error",
        {"means": {"DASE": 0.30, "MISE": 0.31}},
        directory=tmp_path,
    )
    rows = summarize_accuracy("fig5_two_app_error", tmp_path)
    verdicts = {r.quantity: r.verdict for r in rows}
    assert verdicts["DASE mean error"] == "check"  # too inaccurate
    assert verdicts["MISE mean error"] == "check"  # too close to DASE


def test_fig9_rows(results_dir):
    rows = summarize_fig9(results_dir)
    unf = next(r for r in rows if "unfairness" in r.quantity)
    assert unf.measured == "50.0%"
    assert unf.verdict == "shape-ok"


def test_full_summary_and_render(results_dir):
    rows = full_summary(results_dir)
    assert len(rows) >= 5
    text = render_summary(rows)
    assert "fig2_unfairness" in text
    assert "4.50" in text


def test_render_empty():
    assert "no artifacts" in render_summary([])


def test_cli_summarize(results_dir, capsys):
    from repro.cli import main

    assert main(["summarize", "--results-dir", str(results_dir)]) == 0
    out = capsys.readouterr().out
    assert "DASE mean error" in out
