"""Tests for the observability layer: registry, tracer, GPU integration,
telemetry attach/detach, and the process-wide enable/disable switch."""

import importlib
import json
import sys

import pytest

import repro.obs
from repro.config import GPUConfig
from repro.core import DASE
from repro.obs import (
    DEFAULT_CAPACITY,
    EventTracer,
    MetricsRegistry,
    Observation,
    PID_SIM,
    Telemetry,
)
from repro.sim.gpu import GPU
from repro.sim.kernel import KernelSpec

CFG = GPUConfig(interval_cycles=5_000)


def _specs():
    return [
        KernelSpec("a", compute_per_mem=10, warps_per_block=4),
        KernelSpec("b", compute_per_mem=30, warps_per_block=4),
    ]


def traced_run(cycles=15_000):
    obs = Observation()
    gpu = GPU(CFG, _specs(), obs=obs)
    gpu.run(cycles)
    obs.finalize_run(gpu)
    return gpu, obs


# ----------------------------------------------------------------- registry


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        c = reg.counter("a/b")
        c.inc(3)
        assert reg.counter("a/b") is c
        assert reg.counter("a/b").value == 3

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered as counter"):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_counter_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(138.875)
        assert h.vmin == 0.5 and h.vmax == 500.0
        snap = h.snapshot()
        assert snap["overflow"] == 1
        assert sum(snap["buckets"].values()) == 3
        assert h.quantile(0.0) <= h.quantile(1.0) == 500.0

    def test_subtree(self):
        reg = MetricsRegistry()
        reg.gauge("run/app0/ipc").set(1.0)
        reg.gauge("run/app1/ipc").set(2.0)
        reg.gauge("run/cycles").set(10)
        sub = reg.subtree("run/app0")
        assert list(sub) == ["run/app0/ipc"]
        assert len(reg.subtree("run")) == 3

    def test_snapshot_json_safe_and_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("b").set(2.5)
        reg.counter("a").inc()
        reg.histogram("c").observe(1.0)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"] == {"type": "counter", "value": 1}

    def test_to_csv(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.histogram("h").observe(4.0)
        lines = reg.to_csv().strip().splitlines()
        assert lines[0] == "name,type,value"
        assert lines[1] == "a,counter,2"
        assert lines[2].startswith("h,histogram,count=1")


# ------------------------------------------------------------------- tracer


class TestTracer:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventTracer(0)
        assert EventTracer().capacity == DEFAULT_CAPACITY

    def test_ring_wrap_and_drop_accounting(self):
        tr = EventTracer(capacity=4)
        for i in range(10):
            tr.instant("ev", i, 0, 0)
        assert len(tr) == 4
        assert tr.n_emitted == 10
        assert tr.dropped == 6
        # Oldest surviving first: timestamps 6..9 in emission order.
        assert [ev[0] for ev in tr.events()] == [6, 7, 8, 9]

    def test_event_shapes(self):
        tr = EventTracer()
        tr.instant("i1", 5, 1, 2, {"k": 3})
        tr.complete("x1", 10, 7, 0, 4)
        tr.counter("c1", 20, 1, {"v": 1.5})
        evs = tr.events()
        assert evs[0] == (5, "i", "i1", 1, 2, 0, {"k": 3})
        assert evs[1] == (10, "X", "x1", 0, 4, 7, None)
        assert evs[2] == (20, "C", "c1", 1, 0, 0, {"v": 1.5})
        assert tr.counts_by_name() == {"c1": 1, "i1": 1, "x1": 1}

    def test_span_includes_slice_duration(self):
        tr = EventTracer()
        tr.instant("a", 3, 0, 0)
        tr.complete("b", 5, 100, 0, 0)
        assert tr.span() == (3, 105)
        assert EventTracer().span() == (0, 0)

    def test_clear_resets_everything(self):
        tr = EventTracer(capacity=2)
        for i in range(5):
            tr.instant("e", i, 0, 0)
        tr.engine_events = 9
        tr.clear()
        assert len(tr) == 0 and tr.dropped == 0 and tr.n_emitted == 0
        assert tr.engine_events == 0
        assert tr.span() == (0, 0)


# ---------------------------------------------------------- GPU integration


class TestGPUIntegration:
    def test_untraced_gpu_has_no_tracer(self):
        gpu = GPU(CFG, _specs())
        assert gpu.obs is None
        assert gpu._trace is None
        assert gpu.engine._trace is None

    def test_traced_run_emits_full_taxonomy(self):
        gpu, obs = traced_run()
        counts = obs.tracer.counts_by_name()
        for name in ("l2.probe", "dram.enqueue", "dram.service",
                     "dram.reply", "sm.stall", "icnt.pkt", "interval"):
            assert counts.get(name, 0) > 0, f"no {name} events recorded"
        # 15K cycles at 5K intervals → a marker per boundary incl. run end.
        markers = [ev for ev in obs.tracer.events() if ev[2] == "interval"]
        assert [ev[0] for ev in markers] == [5_000, 10_000, 15_000]
        assert all(ev[3] == PID_SIM for ev in markers)

    def test_traced_engine_accounting(self):
        _, obs = traced_run()
        assert obs.tracer.engine_events > 0
        assert 1 <= obs.tracer.engine_max_bucket <= obs.tracer.engine_events

    def test_topology_recorded(self):
        _, obs = traced_run()
        topo = obs.tracer.topology
        assert topo["n_apps"] == 2
        assert topo["n_sms"] == CFG.n_sms
        assert topo["n_partitions"] == CFG.n_partitions
        assert topo["n_banks"] == CFG.n_banks
        assert topo["app_names"] == ["a", "b"]

    def test_finalize_publishes_run_gauges(self):
        gpu, obs = traced_run()
        snap = obs.registry.snapshot()
        assert snap["run/cycles"]["value"] == gpu.engine.now
        assert snap["run/trace/events_emitted"]["value"] == obs.tracer.n_emitted
        for app in range(2):
            assert f"run/app{app}/ipc" in snap
        assert any(n.startswith("run/part0/") for n in snap)

    def test_event_args_are_scalars(self):
        """Events must never hold references into recycled sim objects."""
        _, obs = traced_run()
        for ts, ph, name, pid, tid, dur, args in obs.tracer.events():
            assert isinstance(ts, int) and isinstance(dur, int)
            if args is not None:
                for v in args.values():
                    assert isinstance(v, (int, float, str))


# ----------------------------------------------- process-wide enable/disable


class TestProcessWideRecording:
    def test_enable_disable(self):
        bundle = repro.obs.enable()
        try:
            assert repro.obs.active() is bundle
            gpu = GPU(CFG, _specs())
            assert gpu.obs is bundle
            assert gpu._trace is bundle.tracer
        finally:
            repro.obs.disable()
        assert repro.obs.active() is None
        assert GPU(CFG, _specs()).obs is None

    def test_obs_false_overrides_process_default(self):
        repro.obs.enable()
        try:
            gpu = GPU(CFG, _specs(), obs=False)
            assert gpu.obs is None
            assert gpu._trace is None
        finally:
            repro.obs.disable()

    def test_explicit_observation_wins(self):
        mine = Observation()
        repro.obs.enable()
        try:
            gpu = GPU(CFG, _specs(), obs=mine)
            assert gpu.obs is mine
        finally:
            repro.obs.disable()


# ---------------------------------------------------------------- telemetry


class TestTelemetryObs:
    def _attached_run(self, cycles=15_000):
        gpu = GPU(CFG, _specs())
        dase = DASE(CFG)
        dase.attach(gpu)
        tel = Telemetry({"DASE": dase})
        tel.attach(gpu)
        gpu.run(cycles)
        return gpu, tel

    def test_detach_then_reattach_fresh_gpu(self):
        _, tel = self._attached_run()
        n = len(tel.samples)
        assert n == 3 * 2
        assert tel.attached
        tel.detach()
        assert not tel.attached
        # Re-attach to a new GPU: samples accumulate across attachments.
        gpu2 = GPU(CFG, _specs())
        tel.attach(gpu2)
        gpu2.run(10_000)
        assert len(tel.samples) == n + 2 * 2
        tel.detach()

    def test_detach_is_idempotent(self):
        tel = Telemetry({})
        tel.detach()  # never attached: no-op
        gpu = GPU(CFG, _specs())
        tel.attach(gpu)
        tel.detach()
        tel.detach()
        # The listener really is gone: running the GPU records nothing.
        gpu.run(10_000)
        assert tel.samples == []

    def test_double_attach_still_rejected(self):
        gpu, tel = self._attached_run()
        with pytest.raises(RuntimeError, match="detach"):
            tel.attach(gpu)

    def test_publishes_into_registry_and_tracer(self):
        reg = MetricsRegistry()
        tr = EventTracer()
        gpu = GPU(CFG, _specs())
        tel = Telemetry({}, registry=reg, tracer=tr)
        tel.attach(gpu)
        gpu.run(15_000)
        snap = reg.snapshot()
        assert snap["telemetry/app0/ipc"]["type"] == "gauge"
        assert snap["telemetry/app1/interval_ipc"]["count"] == 3
        counts = tr.counts_by_name()
        assert counts["ipc"] == 3 * 2
        assert counts["alpha"] == 3 * 2

    def test_harness_shim_removed(self):
        # The deprecated repro.harness.telemetry shim has completed its
        # DeprecationWarning cycle and is gone; the canonical home is
        # repro.obs.telemetry.
        sys.modules.pop("repro.harness.telemetry", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.harness.telemetry")

    def test_harness_reexports_removed(self):
        # The compatibility re-exports (`from repro.harness import
        # Telemetry, Sample`) completed their deprecation cycle too:
        # repro.obs is the only import path.
        import repro.harness as harness

        assert not hasattr(harness, "Telemetry")
        assert not hasattr(harness, "Sample")
        assert "Telemetry" not in harness.__all__
        assert "Sample" not in harness.__all__


# --------------------------------------------------------- run_workload glue


class TestRunWorkloadTrace:
    def test_bare_tracer_is_wrapped(self):
        from repro.harness import run_workload

        tr = EventTracer()
        res = run_workload(
            ["VA", "BS"], config=GPUConfig(interval_cycles=5_000),
            shared_cycles=10_000, models=("DASE",), trace=tr,
        )
        assert len(tr) > 0
        assert res.actual_slowdowns
        # Counter tracks carry the estimator series.
        assert "est.DASE" in tr.counts_by_name()

    def test_bad_trace_type_rejected(self):
        from repro.harness import run_workload

        with pytest.raises(TypeError, match="Observation or EventTracer"):
            run_workload(["VA"], trace=object())

    def test_observation_gains_telemetry(self):
        from repro.harness import run_workload

        obs = Observation()
        run_workload(
            ["VA", "BS"], config=GPUConfig(interval_cycles=5_000),
            shared_cycles=10_000, models=(), trace=obs,
        )
        assert obs.telemetry is not None
        assert not obs.telemetry.attached  # detached after the run
        assert obs.telemetry.samples
        # Run-level gauges were finalized.
        assert obs.registry.get("run/cycles").value == 10_000
