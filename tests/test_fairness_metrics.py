"""Property tests for the multi-metric fairness readout (repro.metrics).

The open-system study (``fig-churn``) reports five fairness metrics side
by side — max/min unfairness (Eq. 2), Jain's index, p95/p99 tail
slowdown, and the waiting-time Gini — precisely *because* they can rank
two schedules differently.  This module pins the mathematical contract of
each metric (bounds, equality conditions, invariances, monotonicity),
the degenerate two-app case where several of them must agree, and one
literal disagreement fixture so the divergence documented in
docs/model.md stays reproducible.
"""

import itertools

import pytest

from repro.metrics import gini, jains_index, tail_slowdown, unfairness

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

#: Valid slowdowns: ≥ 1 under contention (Eq. 1), finite for our sims.
slowdowns = st.lists(
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=10,
)

#: Valid waiting times: non-negative cycles (0 = admitted instantly).
waits = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    min_size=1, max_size=10,
)


class TestJainsIndex:
    @given(slowdowns)
    def test_bounds(self, s):
        j = jains_index(s)
        assert 0.0 < j <= 1.0 + 1e-12
        # Jain's floor is 1/N (one app takes everything).
        assert j >= 1.0 / len(s) - 1e-12

    @given(st.floats(1.0, 1e3, allow_nan=False), st.integers(1, 10))
    def test_equal_slowdowns_are_perfectly_fair(self, s, n):
        assert jains_index([s] * n) == pytest.approx(1.0)

    @given(slowdowns)
    def test_one_iff_all_equal(self, s):
        if jains_index(s) == pytest.approx(1.0, abs=1e-12):
            assert max(s) == pytest.approx(min(s), rel=1e-6)

    @given(slowdowns)
    def test_scale_invariant(self, s):
        scaled = [3.0 * x for x in s]
        assert jains_index(scaled) == pytest.approx(jains_index(s), rel=1e-9)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            jains_index([])
        with pytest.raises(ValueError):
            jains_index([1.0, 0.0])


class TestGini:
    @given(waits)
    def test_bounds(self, w):
        g = gini(w)
        assert 0.0 - 1e-12 <= g < 1.0

    @given(waits)
    def test_permutation_invariant(self, w):
        base = gini(w)
        for perm in itertools.islice(itertools.permutations(w), 6):
            assert gini(list(perm)) == pytest.approx(base, abs=1e-9)

    def test_all_zero_is_perfectly_equal(self):
        assert gini([0.0, 0.0, 0.0]) == 0.0

    @given(st.floats(0.01, 1e6, allow_nan=False), st.integers(1, 10))
    def test_equal_waits_are_perfectly_equal(self, v, n):
        assert gini([v] * n) == pytest.approx(0.0, abs=1e-9)

    @given(st.integers(2, 50))
    def test_single_hoarder_approaches_one(self, n):
        # One app waits, n−1 do not: Gini = (n−1)/n, the max for size n.
        g = gini([0.0] * (n - 1) + [100.0])
        assert g == pytest.approx((n - 1) / n, abs=1e-9)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            gini([])
        with pytest.raises(ValueError):
            gini([1.0, -0.5])


class TestTailSlowdown:
    @given(slowdowns)
    def test_within_sample_range(self, s):
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            t = tail_slowdown(s, q)
            assert min(s) - 1e-9 <= t <= max(s) + 1e-9

    @given(slowdowns)
    def test_monotone_in_quantile(self, s):
        p99 = tail_slowdown(s, 0.99)
        assert tail_slowdown(s, 0.95) <= p99 * (1.0 + 1e-12) + 1e-12

    @given(slowdowns, st.floats(0.0, 10.0, allow_nan=False))
    def test_monotone_in_the_tail(self, s, bump):
        """Worsening the worst application never lowers the tail."""
        worse = sorted(s)
        worse[-1] += bump
        for q in (0.95, 0.99):
            assert tail_slowdown(worse, q) >= tail_slowdown(s, q) - 1e-9

    def test_interpolation_pinned(self):
        # 5 samples: p95 sits at position 0.95·4 = 3.8 → 0.2·s[3]+0.8·s[4].
        s = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert tail_slowdown(s, 0.95) == pytest.approx(4.8)
        assert tail_slowdown(s, 0.99) == pytest.approx(4.96)
        assert tail_slowdown([7.0], 0.95) == 7.0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            tail_slowdown([])
        with pytest.raises(ValueError):
            tail_slowdown([1.0], q=1.5)


class TestTwoAppAgreement:
    """With two applications the distribution has no interior: every
    metric reduces to a function of (min, max) and they must agree on
    *which schedule is fairer* whenever both max/min ratios move the same
    way at equal tails — the disagreements fig-churn hunts for need ≥3
    residents or the waiting-time dimension."""

    @given(st.floats(1.0, 100.0, allow_nan=False),
           st.floats(1.0, 100.0, allow_nan=False))
    def test_p99_is_max_and_jain_tracks_unfairness(self, a, b):
        s = [a, b]
        assert tail_slowdown(s, 1.0) == pytest.approx(max(s))
        # Jain's index is a strictly decreasing function of the ratio
        # max/min in the two-app case, so the two rankings coincide.
        r = unfairness(s)
        assert jains_index(s) == pytest.approx(
            (1.0 + r) ** 2 / (2.0 * (1.0 + r * r)), rel=1e-9
        )

    @given(st.floats(1.0, 50.0, allow_nan=False),
           st.floats(1.0, 50.0, allow_nan=False),
           st.floats(1.0, 50.0, allow_nan=False),
           st.floats(1.0, 50.0, allow_nan=False))
    def test_rankings_coincide_for_two_apps(self, a, b, c, d):
        x, y = [a, b], [c, d]
        ux, uy = unfairness(x), unfairness(y)
        jx, jy = jains_index(x), jains_index(y)
        if ux < uy:
            assert jx >= jy - 1e-12
        elif ux > uy:
            assert jx <= jy + 1e-12


class TestDisagreementFixture:
    def test_metrics_can_pick_opposite_winners(self):
        """Pinned counter-example (docs/model.md): schedule A beats B on
        the max/min ratio yet loses on Jain's index and the p95 tail — a
        ratio only sees the extremes, Jain and the tail see the crowd."""
        a = [1.0, 5.0]                        # ratio 5, but only two apps
        b = [2.0, 2.0, 2.0, 2.0, 9.0]         # ratio 4.5, heavy 5-app tail
        assert unfairness(a) > unfairness(b)      # unfairness: B fairer
        assert jains_index(a) > jains_index(b)    # Jain: A fairer
        assert tail_slowdown(a, 0.95) < tail_slowdown(b, 0.95)  # tail: A

    def test_waiting_gini_is_independent_of_slowdowns(self):
        """Equal slowdowns can hide very unequal admission latencies —
        the whole reason fig-churn reports the waiting-time Gini."""
        slow = [2.0, 2.0, 2.0]
        assert unfairness(slow) == 1.0 and jains_index(slow) == 1.0
        assert gini([0.0, 0.0, 90_000.0]) == pytest.approx(2 / 3)
