"""Tests for SM allocation policies (Eqs. 28-30 and DASE-Fair)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import GPUConfig
from repro.core.dase import DASE
from repro.policies import (
    DASEFairPolicy,
    EvenPolicy,
    best_partition,
    interpolate_reciprocal,
)
from repro.policies.sm_alloc import _partitions
from repro.sim.gpu import GPU
from repro.sim.kernel import KernelSpec


class TestInterpolation:
    def test_paper_worked_example(self):
        """§7: slowdown 2 on 8 of 16 SMs → reciprocal 0.5; at 12 SMs the
        reciprocal is 0.5 + (12-8)/(16-8) × (1-0.5) = 0.75."""
        assert interpolate_reciprocal(0.5, 8, 12, 16) == pytest.approx(0.75)

    def test_all_sms_gives_one(self):
        assert interpolate_reciprocal(0.5, 8, 16, 16) == pytest.approx(1.0)

    def test_zero_sms_gives_zero(self):
        assert interpolate_reciprocal(0.5, 8, 0, 16) == pytest.approx(0.0)

    def test_same_count_identity(self):
        assert interpolate_reciprocal(0.37, 8, 8, 16) == pytest.approx(0.37)

    def test_downward_linear(self):
        # Eq. 30: 0.5 × 4/8 = 0.25
        assert interpolate_reciprocal(0.5, 8, 4, 16) == pytest.approx(0.25)

    def test_current_equals_total(self):
        assert interpolate_reciprocal(0.9, 16, 16, 16) == 1.0
        assert interpolate_reciprocal(0.9, 16, 8, 16) == pytest.approx(0.45)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            interpolate_reciprocal(0.5, 0, 4, 16)
        with pytest.raises(ValueError):
            interpolate_reciprocal(0.5, 8, 17, 16)

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=16),
    )
    def test_property_result_in_unit_interval(self, r, cur, tgt):
        v = interpolate_reciprocal(r, cur, tgt, 16)
        assert 0.0 <= v <= 1.0

    @given(st.floats(min_value=0.01, max_value=1.0), st.integers(1, 15))
    def test_property_monotone_in_target(self, r, cur):
        vals = [interpolate_reciprocal(r, cur, t, 16) for t in range(17)]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))


class TestPartitionEnumeration:
    def test_two_apps_sixteen_sms(self):
        parts = _partitions(16, 2)
        assert len(parts) == 15
        assert (1, 15) in parts and (8, 8) in parts

    def test_four_apps_count(self):
        # compositions of 16 into 4 positive parts: C(15,3) = 455
        assert len(_partitions(16, 4)) == 455

    def test_all_parts_positive_and_sum(self):
        for p in _partitions(10, 3):
            assert sum(p) == 10
            assert all(x >= 1 for x in p)

    def test_single_app(self):
        assert _partitions(16, 1) == [(16,)]


class TestBestPartition:
    def test_balanced_apps_keep_even_split(self):
        part, unf = best_partition([0.5, 0.5], [8, 8], 16)
        assert part == (8, 8)
        assert unf == pytest.approx(1.0)

    def test_suffering_app_gains_sms(self):
        # App 0 slowed 4× (recip .25), app 1 slowed 1.33× (recip .75).
        part, unf = best_partition([0.25, 0.75], [8, 8], 16)
        assert part[0] > 8
        assert unf < 3.0  # predicted improvement over current 3.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            best_partition([0.5], [8, 8], 16)

    @given(
        st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=4)
    )
    def test_property_never_worse_than_current(self, recips):
        n = len(recips)
        base = 16 // n
        current = [base + (1 if i < 16 % n else 0) for i in range(n)]
        slowdowns = [1 / r for r in recips]
        current_unf = max(slowdowns) / min(slowdowns)
        _, unf = best_partition(recips, current, 16)
        assert unf <= current_unf + 1e-9


class TestDASEFairPolicy:
    def make_gpu(self, n_sms=8):
        cfg = GPUConfig(n_sms=n_sms, interval_cycles=4_000)
        specs = [
            KernelSpec(
                "a", compute_per_mem=10, warps_per_block=4, insts_per_warp=200
            ),
            KernelSpec(
                "b", compute_per_mem=10, warps_per_block=4, insts_per_warp=200
            ),
        ]
        return cfg, GPU(cfg, specs)

    def test_policy_attaches_estimator(self):
        cfg, gpu = self.make_gpu()
        pol = DASEFairPolicy(cfg)
        pol.attach(gpu)
        assert pol.estimator.gpu is gpu

    def test_no_decision_without_estimates(self):
        cfg, gpu = self.make_gpu()
        pol = DASEFairPolicy(cfg)
        pol.attach(gpu)
        gpu.run(2_000)  # less than one interval
        assert pol.decisions == []

    def test_balanced_workload_stays_even(self):
        cfg, gpu = self.make_gpu()
        pol = DASEFairPolicy(cfg)
        pol.attach(gpu)
        gpu.run(20_000)
        assert gpu.sm_counts() == [4, 4]

    def test_skips_low_tb_apps(self):
        cfg = GPUConfig(n_sms=8, interval_cycles=4_000)
        short = KernelSpec(
            "s", compute_per_mem=10, warps_per_block=4, blocks_total=4,
        )
        other = KernelSpec("o", compute_per_mem=10, warps_per_block=4)
        from repro.sim.gpu import LaunchedKernel

        gpu = GPU(cfg, [LaunchedKernel(short, restart=False), other])
        pol = DASEFairPolicy(cfg, min_tb_unfinished=32)
        pol.attach(gpu)
        gpu.run(20_000)
        assert pol.decisions == []

    def test_rebalances_skewed_estimates(self):
        """Force a fake estimator history showing app 0 crushed: the policy
        must move SMs toward it."""
        cfg, gpu = self.make_gpu()
        est = DASE(cfg)
        pol = DASEFairPolicy(cfg, estimator=est)
        pol.attach(gpu)
        gpu.run(3_999)
        est.history = [[6.0, 1.2]]
        # Trigger the policy directly with plausible records.
        pol.on_interval(gpu.interval_history[-1] if gpu.interval_history else [])
        assert len(pol.decisions) == 1
        _, target = pol.decisions[0]
        assert target[0] > target[1]
        # Freeze the policy so later (balanced) intervals don't revert the
        # move, then let the donors drain.
        pol.improvement_margin = 1.0
        gpu.run(60_000)
        assert gpu.sm_counts() == list(target)

    def test_even_policy_never_moves(self):
        cfg, gpu = self.make_gpu()
        pol = EvenPolicy()
        pol.attach(gpu)
        gpu.run(20_000)
        assert gpu.sm_counts() == [4, 4]
