"""Tests for the profile-based oracle fairness policy."""

import pytest

from repro.config import GPUConfig
from repro.policies import ProfiledFairPolicy, profile_kernel
from repro.sim.gpu import GPU
from repro.sim.kernel import KernelSpec

CFG = GPUConfig(n_sms=8, interval_cycles=4_000)


def linear_profile(per_sm_ipc=1.0, n=8):
    return {s: per_sm_ipc * s for s in range(1, n + 1)}


class TestPrediction:
    def test_linear_profile_predicts_sm_ratio(self):
        pol = ProfiledFairPolicy(CFG, [linear_profile(), linear_profile()])
        assert pol.predicted_slowdown(0, 4) == pytest.approx(2.0)
        assert pol.predicted_slowdown(0, 8) == pytest.approx(1.0)

    def test_interpolates_missing_counts(self):
        prof = {2: 2.0, 6: 6.0, 8: 8.0}
        pol = ProfiledFairPolicy(CFG, [prof, prof])
        assert pol.predicted_slowdown(0, 4) == pytest.approx(2.0)

    def test_extrapolates_below_smallest(self):
        prof = {4: 4.0, 8: 8.0}
        pol = ProfiledFairPolicy(CFG, [prof, prof])
        assert pol.predicted_slowdown(0, 2) == pytest.approx(4.0)

    def test_saturating_profile_caps_slowdown(self):
        """A kernel whose IPC stops scaling keeps slowdown ≈ 1 even with
        fewer SMs (the MBB case profiling does capture)."""
        flat = {s: 5.0 for s in range(1, 9)}
        pol = ProfiledFairPolicy(CFG, [flat, flat])
        assert pol.predicted_slowdown(0, 2) == pytest.approx(1.0)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            ProfiledFairPolicy(CFG, [])
        with pytest.raises(ValueError):
            ProfiledFairPolicy(CFG, [{4: 0.0}])


class TestBestPartition:
    def test_symmetric_profiles_even_split(self):
        pol = ProfiledFairPolicy(CFG, [linear_profile(), linear_profile()])
        part, unf = pol.best_partition()
        assert part == (4, 4)
        assert unf == pytest.approx(1.0)

    def test_saturating_app_donates_sms(self):
        """A flat-profile (MBB-ish) app should give SMs to a scaling app."""
        flat = {s: 5.0 for s in range(1, 9)}
        pol = ProfiledFairPolicy(CFG, [linear_profile(), flat])
        part, _ = pol.best_partition()
        assert part[0] > part[1]


class TestEndToEnd:
    def test_profile_kernel_measures_scaling(self):
        spec = KernelSpec("p", compute_per_mem=40, warps_per_block=4,
                          insts_per_warp=500)
        prof = profile_kernel(spec, CFG, sm_counts=[2, 4, 8], cycles=12_000)
        assert set(prof) == {2, 4, 8}
        assert prof[8] > prof[4] > prof[2] > 0

    def test_policy_applies_once(self):
        flat_spec = KernelSpec("f", compute_per_mem=1, warps_per_block=6,
                               insts_per_warp=300)
        scaling_spec = KernelSpec("s", compute_per_mem=40, warps_per_block=4,
                                  insts_per_warp=300)
        profiles = [
            profile_kernel(scaling_spec, CFG, sm_counts=[2, 4, 6, 8],
                           cycles=10_000, stream_id=0),
            profile_kernel(flat_spec, CFG, sm_counts=[2, 4, 6, 8],
                           cycles=10_000, stream_id=1),
        ]
        gpu = GPU(CFG, [scaling_spec, flat_spec])
        pol = ProfiledFairPolicy(CFG, profiles)
        pol.attach(gpu)
        gpu.run(40_000)
        assert len(pol.decisions) == 1  # static policy: one decision
