"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine


def test_events_fire_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(30, lambda: order.append("c"))
    eng.schedule(10, lambda: order.append("a"))
    eng.schedule(20, lambda: order.append("b"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_ties_fire_in_insertion_order():
    eng = Engine()
    order = []
    for tag in "abcde":
        eng.schedule(5, lambda t=tag: order.append(t))
    eng.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    eng = Engine()
    seen = []
    eng.schedule(42, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [42]
    assert eng.now == 42


def test_run_until_stops_before_later_events():
    eng = Engine()
    fired = []
    eng.schedule(10, lambda: fired.append(10))
    eng.schedule(100, lambda: fired.append(100))
    eng.run(until=50)
    assert fired == [10]
    assert eng.now == 50  # clock advanced to the window edge
    eng.run(until=200)
    assert fired == [10, 100]


def test_run_until_advances_clock_even_with_empty_queue():
    eng = Engine()
    eng.run(until=1234)
    assert eng.now == 1234


def test_nested_scheduling_from_callbacks():
    eng = Engine()
    order = []

    def first():
        order.append(("first", eng.now))
        eng.schedule(5, lambda: order.append(("second", eng.now)))

    eng.schedule(10, first)
    eng.run()
    assert order == [("first", 10), ("second", 15)]


def test_zero_delay_event_fires_at_current_cycle():
    eng = Engine()
    seen = []

    def outer():
        eng.schedule(0, lambda: seen.append(eng.now))

    eng.schedule(7, outer)
    eng.run()
    assert seen == [7]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule(-1, lambda: None)


def test_at_absolute_cycle():
    eng = Engine()
    seen = []
    eng.at(25, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [25]


def test_at_in_past_rejected():
    eng = Engine()
    eng.schedule(10, lambda: eng.at(5, lambda: None))
    with pytest.raises(ValueError):
        eng.run()


def test_stop_halts_processing():
    eng = Engine()
    fired = []
    eng.schedule(1, lambda: fired.append(1))
    eng.schedule(2, eng.stop)
    eng.schedule(3, lambda: fired.append(3))
    eng.run()
    assert fired == [1]
    assert eng.pending == 1  # the t=3 event is still queued
    eng.run()
    assert fired == [1, 3]


def test_pending_counts_queued_events():
    eng = Engine()
    assert eng.pending == 0
    eng.schedule(1, lambda: None)
    eng.schedule(2, lambda: None)
    assert eng.pending == 2


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
def test_property_events_observe_monotonic_clock(delays):
    """However events are scheduled, observed fire times never decrease."""
    eng = Engine()
    times = []
    for d in delays:
        eng.schedule(d, lambda: times.append(eng.now))
    eng.run()
    assert len(times) == len(delays)
    assert times == sorted(times)
    assert times == sorted(delays)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=500),
            st.integers(min_value=0, max_value=500),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_nested_events_keep_order(pairs):
    """Events scheduled from callbacks still fire in global time order."""
    eng = Engine()
    times = []
    for outer_delay, inner_delay in pairs:
        def outer(inner=inner_delay):
            times.append(eng.now)
            eng.schedule(inner, lambda: times.append(eng.now))

        eng.schedule(outer_delay, outer)
    eng.run()
    assert times == sorted(times)
    assert len(times) == 2 * len(pairs)


# --- sparse (per-event heap) fallback ---------------------------------------
#
# Under sustained low occupancy (~1 event per cycle) the bucketed queue
# converts to a per-event heap after a probation window.  The conversion
# is a pure representation change: firing order, tie order, clock
# semantics, stop/resume, and ``pending`` must all be indistinguishable
# from the dense engine.

import random as _random

import repro.sim.engine as engine_module


def _shrink_probation(monkeypatch, events=16):
    monkeypatch.setattr(engine_module, "_PROBATION_EVENTS", events)


def test_sparse_conversion_triggers_on_low_occupancy(monkeypatch):
    _shrink_probation(monkeypatch)
    eng = Engine()
    fired = []
    for i in range(40):  # one event per bucket: occupancy 1.0 < ratio
        eng.schedule(i * 7, lambda i=i: fired.append(i))
    eng.run()
    assert eng._sparse
    assert fired == list(range(40))


def test_bursty_load_stays_dense(monkeypatch):
    _shrink_probation(monkeypatch)
    eng = Engine()
    fired = []
    for i in range(64):  # eight events per bucket: occupancy 8 >= ratio
        eng.schedule(i // 8, lambda i=i: fired.append(i))
    eng.run()
    assert not eng._sparse
    assert fired == list(range(64))


def test_sparse_firing_order_matches_dense(monkeypatch):
    """Same randomized schedule (with ties and nested events) through the
    dense engine and through one that converts mid-run: identical trace."""
    rng = _random.Random(20160807)
    plan = [(rng.randrange(20_000), i) for i in range(500)]

    def drive(eng):
        trace = []
        for cycle, tag in plan:
            def cb(tag=tag, cycle=cycle):
                trace.append((eng.now, tag))
                if tag % 5 == 0:  # nested schedule, crosses the conversion
                    eng.schedule(3, lambda t=-tag: trace.append((eng.now, t)))
            eng.at(cycle, cb)
        eng.run()
        return trace

    dense = drive(Engine())
    _shrink_probation(monkeypatch)
    sparse_eng = Engine()
    sparse = drive(sparse_eng)
    assert sparse_eng._sparse  # the schedule is sparse enough to convert
    assert sparse == dense


def test_pending_in_sparse_mode(monkeypatch):
    _shrink_probation(monkeypatch)
    eng = Engine()
    for i in range(30):
        eng.schedule(i * 3, lambda: None)
    eng.run(until=45)
    assert eng._sparse
    assert eng.pending == sum(1 for i in range(30) if i * 3 > 45)
    eng.run()
    assert eng.pending == 0


def test_stop_and_resume_in_sparse_mode(monkeypatch):
    _shrink_probation(monkeypatch)
    eng = Engine()
    fired = []
    for i in range(40):
        eng.schedule(i * 2, lambda i=i: fired.append(i))
    eng.at(41, eng.stop)
    eng.run()
    assert eng._sparse
    assert fired == list(range(21))  # events at cycles 0..40 fired
    eng.run()  # resume drains the rest in order
    assert fired == list(range(40))


def test_run_until_in_sparse_mode_advances_clock(monkeypatch):
    _shrink_probation(monkeypatch)
    eng = Engine()
    for i in range(20):
        eng.schedule(i * 3, lambda: None)
    eng.run(until=60)
    assert eng._sparse
    assert eng.now == 60
    eng.run(until=500)
    assert eng.now == 500
