"""Tests for the MBB/NMBB classification (Eqs. 19-22)."""

import pytest

from repro.config import GPUConfig
from repro.core.classify import is_mbb, request_max, shared_requests
from repro.sim.stats import AppMemCounters, AppSMCounters, IntervalRecord


def record(
    app=0,
    cycles=50_000,
    requests=0,
    ellc=0.0,
    alpha=0.0,
    sm_count=8,
) -> IntervalRecord:
    sm = AppSMCounters(
        instructions=1000,
        busy_time=(1 - alpha) * cycles,
        stall_time=alpha * cycles,
        sm_time=cycles,
    )
    return IntervalRecord(
        app=app,
        start=0,
        end=cycles,
        mem=AppMemCounters(requests_served=requests),
        sm=sm,
        ellc_miss=ellc,
        sm_count=sm_count,
        sm_total=16,
        tb_running=8,
        tb_unfinished=10_000,
    )


CFG = GPUConfig()
RMAX = request_max(50_000, CFG)


class TestRequestMax:
    def test_formula(self):
        expected = 50_000 * CFG.n_partitions / CFG.time_per_request * 0.6
        assert RMAX == pytest.approx(expected)

    def test_scales_with_cycles(self):
        assert request_max(100_000, CFG) == pytest.approx(2 * RMAX)

    def test_factor_override(self):
        cfg = GPUConfig(reqmax_factor=0.8)
        assert request_max(50_000, cfg) == pytest.approx(RMAX / 0.6 * 0.8)


class TestSharedRequests:
    def test_subtracts_contention_misses(self):
        assert shared_requests(record(requests=100, ellc=30.0)) == 70.0

    def test_floored_at_one(self):
        assert shared_requests(record(requests=5, ellc=50.0)) == 1.0


class TestClassification:
    def test_saturating_app_is_mbb(self):
        r = record(requests=int(RMAX) + 1, alpha=0.9)
        assert is_mbb(r, [r], CFG)

    def test_idle_memory_system_is_nmbb(self):
        """Eq. 19: total requests below Requestmax → NMBB."""
        r = record(requests=int(RMAX * 0.3), alpha=0.9)
        assert not is_mbb(r, [r], CFG)

    def test_small_share_is_nmbb(self):
        """Eq. 21: another app saturates the DRAM but this one barely uses
        it → this one is not bandwidth-bound."""
        big = record(app=0, requests=int(RMAX))
        small = record(app=1, requests=int(RMAX * 0.1), alpha=0.9)
        assert not is_mbb(small, [big, small], CFG)

    def test_eq22_low_alpha_low_rate_is_nmbb(self):
        """Eq. 22: an app that is not stalling and whose extrapolated
        request rate stays below Requestmax is NMBB even when the memory
        system is saturated by others."""
        partner = record(app=0, requests=int(RMAX * 0.55))
        this = record(app=1, requests=int(RMAX * 0.5), alpha=0.0)
        assert not is_mbb(this, [partner, this], CFG)

    def test_eq22_high_alpha_boosts_to_mbb(self):
        partner = record(app=0, requests=int(RMAX * 0.55))
        this = record(app=1, requests=int(RMAX * 0.52), alpha=0.6)
        assert is_mbb(this, [partner, this], CFG)

    def test_alpha_one_short_circuits(self):
        partner = record(app=0, requests=int(RMAX * 0.6))
        this = record(app=1, requests=int(RMAX * 0.52), alpha=1.0)
        assert is_mbb(this, [partner, this], CFG)

    def test_contention_misses_reduce_share(self):
        """Extra misses inflate raw counts; Eq. 21 uses corrected counts."""
        partner = record(app=0, requests=int(RMAX * 0.8))
        this = record(
            app=1, requests=int(RMAX * 0.5), ellc=RMAX * 0.4, alpha=0.9
        )
        assert not is_mbb(this, [partner, this], CFG)

    def test_no_requests_is_nmbb(self):
        r = record(requests=0, alpha=1.0)
        assert not is_mbb(r, [r], CFG)

    def test_zero_cycle_interval_is_nmbb(self):
        r = record(cycles=0, requests=10)
        assert not is_mbb(r, [r], CFG)
