"""Tests for the random workload generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GPUConfig
from repro.sim.gpu import GPU
from repro.workloads import GeneratorProfile, WorkloadGenerator


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = [k.name for k in WorkloadGenerator(seed=7).workload(4)]
        b = [k.name for k in WorkloadGenerator(seed=7).workload(4)]
        ka = [vars(k) for k in WorkloadGenerator(seed=7).workload(4)]
        kb = [vars(k) for k in WorkloadGenerator(seed=7).workload(4)]
        assert a == b
        assert ka == kb

    def test_different_seeds_differ(self):
        a = [vars(k) for k in WorkloadGenerator(seed=1).workload(4)]
        b = [vars(k) for k in WorkloadGenerator(seed=2).workload(4)]
        assert a != b

    def test_names_unique(self):
        gen = WorkloadGenerator()
        names = [gen.kernel().name for _ in range(20)]
        assert len(set(names)) == 20

    def test_profile_respected(self):
        profile = GeneratorProfile(
            min_compute_per_mem=10, max_compute_per_mem=20, max_reuse=0.0,
            occupancy_limited_fraction=0.0,
        )
        gen = WorkloadGenerator(seed=3, profile=profile)
        for _ in range(30):
            k = gen.kernel()
            assert 9 <= k.compute_per_mem <= 20
            assert k.reuse_fraction == 0.0
            assert k.max_resident_blocks is None

    def test_bad_profile_rejected(self):
        with pytest.raises(ValueError):
            GeneratorProfile(min_compute_per_mem=50, max_compute_per_mem=10)
        with pytest.raises(ValueError):
            GeneratorProfile(max_reuse=2.0)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGenerator().workload(0)

    def test_workloads_batch(self):
        ws = WorkloadGenerator().workloads(3, 2)
        assert len(ws) == 3
        assert all(len(w) == 2 for w in ws)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_generated_kernels_run(self, seed):
        """Any generated workload must be simulable without errors."""
        gen = WorkloadGenerator(seed=seed)
        cfg = GPUConfig(n_sms=2, n_partitions=2, interval_cycles=5_000)
        gpu = GPU(cfg, gen.workload(2))
        gpu.run(5_000)
        assert gpu.engine.now == 5_000
        assert sum(p.instructions for p in gpu.progress) > 0
