"""Calibration contract for the synthetic suite (paper Table 3).

These tests are slower than the unit tests (each runs the simulator for
tens of thousands of cycles) but pin the property everything else depends
on: each synthetic application's alone bandwidth matches its real
counterpart and the qualitative roles (aggressor / victim / compute-bound)
are preserved.
"""

import pytest

from repro import GPU
from repro.config import GPUConfig
from repro.workloads import (
    ALL_APPS,
    APP_NAMES,
    SUITE,
    TABLE3_BW_UTILIZATION,
    app,
    four_app_workloads,
    two_app_workloads,
)

CFG = GPUConfig(interval_cycles=12_000)
CYCLES = 50_000


@pytest.fixture(scope="module")
def alone_measurements():
    out = {}
    for name, spec in SUITE.items():
        gpu = GPU(CFG, [spec])
        gpu.run(CYCLES)
        out[name] = {
            "bw": gpu.bandwidth_utilization(0),
            "alpha": gpu.sm_counters[0].alpha,
            "ipc": gpu.ipc(0),
        }
    return out


class TestSuiteStructure:
    def test_fifteen_apps(self):
        assert len(SUITE) == 15
        assert len(ALL_APPS) == 15

    def test_names_match_paper_abbreviations(self):
        assert set(APP_NAMES) == set(TABLE3_BW_UTILIZATION)

    def test_lookup(self):
        assert app("SD").name == "SD"
        with pytest.raises(KeyError):
            app("nonexistent")

    def test_two_app_combinations(self):
        pairs = two_app_workloads()
        assert len(pairs) == 105  # C(15, 2) — "all possible" in the paper
        assert len(set(pairs)) == 105

    def test_four_app_workloads_deterministic(self):
        a = four_app_workloads(30)
        b = four_app_workloads(30)
        assert a == b
        assert len(set(a)) == 30

    def test_four_app_workloads_distinct_apps(self):
        for combo in four_app_workloads(30):
            assert len(set(combo)) == 4

    def test_four_app_count_limit(self):
        with pytest.raises(ValueError):
            four_app_workloads(10**6)


@pytest.mark.slow
class TestCalibration:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_alone_bandwidth_matches_table3(self, alone_measurements, name):
        measured = alone_measurements[name]["bw"]
        target = TABLE3_BW_UTILIZATION[name]
        assert measured == pytest.approx(target, abs=0.08), (
            f"{name}: measured {measured:.2f} vs Table 3 {target:.2f}"
        )

    def test_sb_is_the_bandwidth_hog(self, alone_measurements):
        assert alone_measurements["SB"]["bw"] == max(
            m["bw"] for m in alone_measurements.values()
        )
        assert alone_measurements["SB"]["alpha"] > 0.5  # truly bandwidth-bound

    def test_qr_is_compute_bound(self, alone_measurements):
        # Small residual α comes from reply-port convoys (synchronized
        # warps all blocking at once), not from DRAM pressure.
        assert alone_measurements["QR"]["alpha"] < 0.15
        assert alone_measurements["QR"]["ipc"] > 12

    def test_demand_limited_apps_run_near_peak_ipc_alone(self, alone_measurements):
        for name in ("QR", "CT", "SN", "SD"):
            assert alone_measurements[name]["ipc"] > 10, name

    def test_memory_bound_apps_stall_alone(self, alone_measurements):
        """The overcommitted heavy apps are genuinely bandwidth-bound."""
        for name in ("BS", "AA", "VA", "SB", "SA", "SP", "SC", "NN"):
            assert alone_measurements[name]["alpha"] > 0.5, name
