"""Tests for counters and time integrators."""

import pytest

from repro.sim.stats import (
    AppMemCounters,
    AppSMCounters,
    IntervalRecord,
    MemoryStats,
)


class TestSnapshots:
    def test_mem_delta(self):
        a = AppMemCounters(requests_served=10, l2_hits=5)
        snap = a.snapshot()
        a.requests_served += 7
        a.l2_hits += 1
        d = a.delta(snap)
        assert d.requests_served == 7
        assert d.l2_hits == 1
        assert d.erb_miss == 0

    def test_snapshot_is_copy(self):
        a = AppMemCounters()
        s = a.snapshot()
        a.requests_served = 99
        assert s.requests_served == 0

    def test_sm_delta(self):
        a = AppSMCounters(instructions=100, busy_time=50.0)
        s = a.snapshot()
        a.instructions += 10
        a.stall_time += 5.0
        d = a.delta(s)
        assert d.instructions == 10
        assert d.stall_time == 5.0


class TestAlpha:
    def test_alpha_zero_when_never_stalled(self):
        c = AppSMCounters(busy_time=100.0, stall_time=0.0)
        assert c.alpha == 0.0

    def test_alpha_one_when_always_stalled(self):
        c = AppSMCounters(busy_time=0.0, stall_time=100.0)
        assert c.alpha == 1.0

    def test_alpha_fraction(self):
        c = AppSMCounters(busy_time=60.0, stall_time=40.0)
        assert c.alpha == pytest.approx(0.4)

    def test_alpha_empty_is_zero(self):
        assert AppSMCounters().alpha == 0.0


class TestMemoryStatsIntegration:
    def test_outstanding_time_integrates_while_outstanding(self):
        ms = MemoryStats(1)
        ms.advance(10)
        ms.request_enqueued(0)
        ms.advance(25)  # 15 cycles with one outstanding
        ms.request_completed(0)
        ms.advance(40)  # nothing outstanding
        assert ms.apps[0].outstanding_time == 15.0

    def test_executing_banks_weighted_by_count(self):
        ms = MemoryStats(1)
        ms.bank_started(0)
        ms.bank_started(0)
        ms.advance(10)  # 2 banks × 10 cycles
        ms.bank_finished(0)
        ms.advance(15)  # 1 bank × 5 cycles
        ms.bank_finished(0)
        assert ms.apps[0].executing_bank_integral == pytest.approx(25.0)

    def test_demanded_banks_integral(self):
        ms = MemoryStats(2)
        ms.demanded_changed(0, +1)
        ms.demanded_changed(1, +1)
        ms.advance(10)
        ms.demanded_changed(0, -1)
        ms.advance(20)
        assert ms.apps[0].demanded_bank_integral == pytest.approx(10.0)
        assert ms.apps[1].demanded_bank_integral == pytest.approx(20.0)

    def test_busy_time_any_bank(self):
        ms = MemoryStats(2)
        ms.bank_started(0)
        ms.advance(5)
        ms.bank_started(1)
        ms.advance(12)
        ms.bank_finished(0)
        ms.bank_finished(1)
        ms.advance(20)
        assert ms.busy_time == pytest.approx(12.0)

    def test_advance_is_idempotent_at_same_time(self):
        ms = MemoryStats(1)
        ms.request_enqueued(0)
        ms.advance(10)
        ms.advance(10)
        assert ms.apps[0].outstanding_time == 10.0

    def test_advance_never_goes_backward(self):
        ms = MemoryStats(1)
        ms.advance(10)
        ms.advance(5)  # silently ignored
        assert ms.apps[0].outstanding_time == 0.0


class TestIntervalRecord:
    def test_cycles(self):
        rec = IntervalRecord(
            app=0, start=100, end=350, mem=AppMemCounters(),
            sm=AppSMCounters(), ellc_miss=0.0, sm_count=8, sm_total=16,
            tb_running=1, tb_unfinished=2,
        )
        assert rec.cycles == 250
