"""Tests for the Table 1 hardware-cost model."""

import pytest

from repro.config import GPUConfig
from repro.hwcost import dase_hardware_cost, table1_rows


class TestHardwareCost:
    def test_paper_claim_n4(self):
        """Paper §4.4: with N=4 the per-partition cost is < 0.4 KB, i.e.
        < 0.625% of a 64 KB L2 slice."""
        cost = dase_hardware_cost(GPUConfig(), n_apps=4)
        assert cost.per_partition_bytes < 0.4 * 1024
        assert cost.fraction_of_l2() < 0.00625

    def test_only_request_counters_replicate_per_app(self):
        """The detection hardware is time-multiplexed (estimated one by
        one); adding an app only adds one served-request counter."""
        c1 = dase_hardware_cost(GPUConfig(), n_apps=1)
        c4 = dase_hardware_cost(GPUConfig(), n_apps=4)
        assert c4.per_partition_bits - c1.per_partition_bits == 3 * 32

    def test_atd_dominates(self):
        """The sampled ATD is the largest single component (paper §4.4)."""
        cfg = GPUConfig()
        c1 = dase_hardware_cost(cfg, n_apps=1)
        atd_bits = cfg.atd_sample_sets * cfg.l2.assoc * 32
        assert atd_bits > c1.per_partition_bits / 2

    def test_alpha_counter_per_sm(self):
        cost = dase_hardware_cost(GPUConfig(), n_apps=4)
        assert cost.per_sm_bits == 32

    def test_invalid_app_count(self):
        with pytest.raises(ValueError):
            dase_hardware_cost(GPUConfig(), n_apps=0)

    def test_more_sampled_sets_cost_more(self):
        lo = dase_hardware_cost(GPUConfig(atd_sample_sets=4), 4)
        hi = dase_hardware_cost(GPUConfig(atd_sample_sets=16), 4)
        assert hi.per_partition_bits > lo.per_partition_bits

    def test_table_rows_cover_paper_components(self):
        rows = table1_rows(GPUConfig(), 4)
        names = " ".join(r[0] for r in rows)
        for component in ("ERBMiss", "row address", "ATD", "BLP", "α",
                          "Interval", "TBsum"):
            assert component in names
