"""Tests for the telemetry recorder."""

import pytest

from repro.config import GPUConfig
from repro.core import DASE
from repro.obs import Telemetry
from repro.sim.gpu import GPU
from repro.sim.kernel import KernelSpec

CFG = GPUConfig(interval_cycles=5_000)


def make_run(with_estimator=True, cycles=15_000):
    gpu = GPU(CFG, [
        KernelSpec("a", compute_per_mem=10, warps_per_block=4),
        KernelSpec("b", compute_per_mem=30, warps_per_block=4),
    ])
    ests = {}
    if with_estimator:
        dase = DASE(CFG)
        dase.attach(gpu)
        ests["DASE"] = dase
    tel = Telemetry(ests)
    tel.attach(gpu)
    gpu.run(cycles)
    return gpu, tel


class TestTelemetry:
    def test_one_sample_per_app_per_interval(self):
        _, tel = make_run()
        assert len(tel.samples) == 3 * 2  # 3 intervals × 2 apps

    def test_samples_carry_estimates(self):
        _, tel = make_run()
        for s in tel.samples:
            assert "DASE" in s.estimates
            assert s.estimates["DASE"] is None or s.estimates["DASE"] >= 1.0

    def test_series_extraction(self):
        _, tel = make_run()
        ipc = tel.series(0, "ipc")
        assert len(ipc) == 3
        assert all(v > 0 for v in ipc)
        ests = tel.series(1, "DASE")
        assert len(ests) == 3

    def test_sample_fields_sane(self):
        _, tel = make_run()
        for s in tel.samples:
            assert 0.0 <= s.alpha <= 1.0
            assert 0.0 <= s.l2_hit_rate <= 1.0
            assert 0.0 <= s.bw_share <= 1.0
            assert s.sm_count == 8
            assert s.cycle % 5_000 == 0

    def test_csv_export(self):
        _, tel = make_run()
        csv = tel.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("cycle,app,ipc")
        assert lines[0].endswith("est_DASE")
        assert len(lines) == 1 + len(tel.samples)
        assert all(line.count(",") == lines[0].count(",") for line in lines)

    def test_without_estimators(self):
        _, tel = make_run(with_estimator=False)
        assert tel.samples
        assert tel.samples[0].estimates == {}

    def test_double_attach_rejected(self):
        gpu, tel = make_run()
        with pytest.raises(RuntimeError):
            tel.attach(gpu)

    def test_detach_allows_reattach(self):
        gpu, tel = make_run()
        n = len(tel.samples)
        tel.detach()
        tel.attach(gpu)  # no RuntimeError after a detach
        gpu.run(5_000)
        assert len(tel.samples) == n + 2

    def test_legacy_import_path_removed(self):
        # repro.obs.Telemetry is the only import path: the repro.harness
        # re-export finished its deprecation cycle and is gone.
        import repro.harness as harness

        assert not hasattr(harness, "Telemetry")
        from repro.obs import Telemetry as canonical

        assert canonical is Telemetry
