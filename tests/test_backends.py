"""Backend-equivalence gates for the pluggable simulator cores.

The contract (docs/performance.md, "phase 2 — backends"): selecting a
backend may change *how* the core computes, never *what* it computes.
These tests hold the vectorized backend to that bar at every layer —
per-warp address streams (bit-identical consumed traces), the batched
DRAM stats (identical counters and integrals), whole workloads against
the committed golden fixtures, the pooled sweep path, and a multi-seed
sweep.  The registry/validation tests and the reference-backend tests run
everywhere; everything touching the vectorized core is skipped cleanly
when NumPy is absent (the no-numpy CI job relies on that).
"""

import dataclasses
import random

import pytest

from repro.config import KNOWN_BACKENDS, GPUConfig
from repro.harness import run_workload, scaled_config
from repro.harness.parallel import WorkloadJob, run_jobs
from repro.sim.backends import (
    available_backends,
    backend_available,
    get_backend,
)
from repro.sim.kernel import AccessPattern, KernelSpec, WarpStream
from repro.sim.stats import MemoryStats
from repro.workloads import SUITE

numpy = pytest.importorskip  # alias kept short for the gated tests below


# ------------------------------------------------------------ config layer


def test_known_backends_contents():
    assert KNOWN_BACKENDS == ("reference", "vectorized")


def test_default_backend_is_reference():
    assert GPUConfig().backend == "reference"


def test_unknown_backend_rejected_with_clear_error():
    with pytest.raises(ValueError, match="backend.*nope"):
        GPUConfig(backend="nope")


def test_known_backend_names_accepted():
    for name in KNOWN_BACKENDS:
        assert GPUConfig(backend=name).backend == name


def test_run_workload_backend_override_validates():
    with pytest.raises(ValueError, match="backend"):
        run_workload(["SB"], shared_cycles=2_000, models=(),
                     backend="bogus")


# ---------------------------------------------------------------- registry


def test_get_backend_unknown_name():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("turbo")


def test_reference_backend_always_available():
    assert backend_available("reference")
    be = get_backend("reference")
    assert be.name == "reference" and not be.requires_numpy


def test_available_backends_reference_first():
    avail = available_backends()
    assert avail[0] == "reference"
    assert set(avail) <= set(KNOWN_BACKENDS)


def test_reference_factory_builds_reference_classes():
    be = get_backend("reference")
    stream = be.make_stream(SUITE["SB"], 0, 0, 0, 2016, 128)
    assert type(stream) is WarpStream
    assert type(be.make_memory_stats(2)) is MemoryStats


# ------------------------------------------------- stream trace equivalence


def _consume(stream):
    """The consumed trace: exactly what the simulator observes."""
    bursts, addrs, stores = [], [], []
    while not stream.done:
        bursts.append(stream.next_compute_burst())
        if stream.done:
            break
        a, s = stream.next_mem_access()
        addrs.append(list(a))
        stores.append(s)
    return bursts, addrs, stores, stream.remaining_insts


#: Synthetic specs covering every generator path and clamp edge:
#: fixed-layout with wide/odd-stride parity, word-replay with rejection
#: sampling (RANDOM + hot set), stores, uncoalesced accesses, and a
#: budget that the final burst clamp must truncate exactly.
_EDGE_SPECS = [
    KernelSpec("wide-odd-stride", compute_per_mem=2,
               pattern=AccessPattern.STRIDED, stride_lines=3,
               wide_fraction=0.5, insts_per_warp=97),
    KernelSpec("stores-uncoalesced", compute_per_mem=1,
               store_fraction=0.4, accesses_per_mem_inst=3,
               insts_per_warp=150),
    KernelSpec("random-hot", compute_per_mem=3,
               pattern=AccessPattern.RANDOM, reuse_fraction=0.5,
               hot_set_lines=5, working_set_lines=1000,
               insts_per_warp=200),
    KernelSpec("clamp-edge", compute_per_mem=9, insts_per_warp=21),
    KernelSpec("pure-mem", compute_per_mem=0, insts_per_warp=64),
]


@pytest.mark.parametrize("name", sorted(SUITE))
def test_vectorized_stream_bit_identical_suite(name):
    numpy("numpy")
    from repro.sim.backends.vectorized import VectorizedWarpStream

    spec = SUITE[name]
    for block, warp in ((0, 0), (3, 5)):
        ref = _consume(WarpStream(spec, 0, block, warp, 2016, 128))
        vec = _consume(VectorizedWarpStream(spec, 0, block, warp, 2016, 128))
        assert ref == vec


@pytest.mark.parametrize("spec", _EDGE_SPECS, ids=lambda s: s.name)
def test_vectorized_stream_bit_identical_edges(spec):
    numpy("numpy")
    from repro.sim.backends.vectorized import VectorizedWarpStream

    for warp in range(4):
        ref = _consume(WarpStream(spec, 1, 2, warp, 7, 128))
        vec = _consume(VectorizedWarpStream(spec, 1, 2, warp, 7, 128))
        assert ref == vec


@pytest.mark.parametrize("name", ["SB", "SD", "NN", "CS"])
def test_vectorized_stream_bit_identical_paper_scale(name):
    numpy("numpy")
    from repro.sim.backends.vectorized import VectorizedWarpStream

    spec = dataclasses.replace(SUITE[name], insts_per_warp=4_000)
    ref = _consume(WarpStream(spec, 0, 0, 1, 2016, 128))
    vec = _consume(VectorizedWarpStream(spec, 0, 0, 1, 2016, 128))
    assert ref == vec


def test_vectorized_factory_is_per_spec_policy():
    """The backend picks the faster implementation per spec — streams are
    bit-identical either way, so the choice is pure policy and both
    branches must satisfy the stream-equality gates above."""
    numpy("numpy")
    from repro.sim.backends.vectorized import VectorizedWarpStream

    be = get_backend("vectorized")
    # Paper-scale fixed-layout spec: vectorized pregeneration wins.
    big = dataclasses.replace(SUITE["SB"], insts_per_warp=4_000)
    assert type(be.make_stream(big, 0, 0, 0, 1, 128)) is VectorizedWarpStream
    # Tiny budget: per-warp NumPy fixed costs never amortize.
    tiny = dataclasses.replace(SUITE["SB"], insts_per_warp=40)
    assert type(be.make_stream(tiny, 0, 0, 0, 1, 128)) is WarpStream
    # Word-replay shapes (RANDOM / hot-set) measure at or below reference
    # speed, so the factory routes them to the reference generator.
    rnd = dataclasses.replace(SUITE["NN"], insts_per_warp=4_000)
    assert type(be.make_stream(rnd, 0, 0, 0, 1, 128)) is WarpStream


# -------------------------------------------------------- batched DRAM stats


def test_batched_stats_match_eager_on_random_schedule():
    numpy("numpy")
    from repro.sim.backends.vectorized import BatchedMemoryStats

    rng = random.Random(99)
    n_apps = 3
    eager, batched = MemoryStats(n_apps), BatchedMemoryStats(n_apps)
    outstanding = [0] * n_apps
    executing = [0] * n_apps
    now = 0
    for _ in range(600):
        now += rng.randrange(0, 4)  # repeated cycles + gaps
        app = rng.randrange(n_apps)
        op = rng.random()
        if op < 0.45 or not outstanding[app]:
            demanded = rng.random() < 0.5
            for s in (eager, batched):
                s.on_enqueue(now, app, demanded)
            outstanding[app] += 1
        elif op < 0.75:
            for s in (eager, batched):
                s.on_bank_start(now, app)
            executing[app] += 1
        elif executing[app]:
            freed = rng.random() < 0.5
            for s in (eager, batched):
                s.on_complete(now, app, freed)
            executing[app] -= 1
            outstanding[app] -= 1
    now += 5
    eager.advance(now)
    batched.advance(now)
    assert batched.busy_time == eager.busy_time
    for a in range(n_apps):
        e, b = eager.apps[a], batched.apps[a]
        assert b.requests_served == e.requests_served
        assert b.outstanding_time == e.outstanding_time
        assert b.executing_bank_integral == e.executing_bank_integral
        assert b.demanded_bank_integral == e.demanded_bank_integral


def test_batched_stats_outstanding_mid_run():
    numpy("numpy")
    from repro.sim.backends.vectorized import BatchedMemoryStats

    s = BatchedMemoryStats(2)
    s.on_enqueue(10, 0, True)
    s.on_enqueue(12, 0, False)
    s.on_enqueue(12, 1, True)
    assert s.outstanding(0) == 2
    assert s.outstanding(1) == 1
    s.on_bank_start(13, 0)
    s.on_complete(15, 0, True)
    assert s.outstanding(0) == 1


# ------------------------------------------------- whole-workload equality


GOLDEN_PAIR = ("SD", "SB")
GOLDEN_QUAD = ("SD", "NN", "CS", "SB")
GOLDEN_CYCLES = 40_000  # matches tests/test_golden.py fixtures


def _result_key(res):
    return (res.instructions, res.alone_cycles, res.actual_slowdowns,
            res.estimates, res.bandwidth, res.final_sm_partition)


@pytest.mark.parametrize("apps", [GOLDEN_PAIR, GOLDEN_QUAD],
                         ids=lambda a: "+".join(a))
def test_vectorized_equals_reference_inline(apps):
    numpy("numpy")
    ref = run_workload(list(apps), config=scaled_config(),
                       shared_cycles=GOLDEN_CYCLES, models=("DASE",))
    vec = run_workload(list(apps), config=scaled_config(),
                       shared_cycles=GOLDEN_CYCLES, models=("DASE",),
                       backend="vectorized")
    assert _result_key(ref) == _result_key(vec)


def test_vectorized_matches_golden_fixture():
    """The committed golden values were recorded under the reference
    backend; the vectorized backend must land on them exactly."""
    numpy("numpy")
    import json
    import pathlib

    fixture = json.loads(
        (pathlib.Path(__file__).parent / "golden" / "golden_pairs.json")
        .read_text()
    )
    expected = fixture["pairs"]["+".join(GOLDEN_PAIR)]
    res = run_workload(list(GOLDEN_PAIR), config=scaled_config(),
                       shared_cycles=GOLDEN_CYCLES, models=(),
                       backend="vectorized")
    assert res.instructions == expected["instructions"]
    assert res.alone_cycles == expected["alone_cycles"]
    assert res.actual_slowdowns == expected["slowdowns"]


def test_workload_job_roundtrips_backend_through_pool():
    numpy("numpy")
    job = WorkloadJob(apps=GOLDEN_PAIR, shared_cycles=12_000,
                      models=("DASE",), backend="vectorized")
    assert job.backend == "vectorized"
    pooled = run_jobs([job], n_jobs=2)[0].unwrap()
    inline = run_workload(list(GOLDEN_PAIR), shared_cycles=12_000,
                          models=("DASE",))
    assert _result_key(pooled) == _result_key(inline)


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_backend_equivalence_across_seeds(seed):
    numpy("numpy")
    cfg = scaled_config(seed=seed)
    ref = run_workload(["NN", "VA"], config=cfg, shared_cycles=16_000,
                       models=("DASE",))
    vec = run_workload(["NN", "VA"], config=cfg, shared_cycles=16_000,
                       models=("DASE",), backend="vectorized")
    assert _result_key(ref) == _result_key(vec)


# ------------------------------------------------------------- fingerprint


def test_backend_excluded_from_config_fingerprint():
    from repro.harness.replay_cache import config_fingerprint

    ref = config_fingerprint(GPUConfig(backend="reference"))
    vec = config_fingerprint(GPUConfig(backend="vectorized"))
    assert ref == vec
